package faultsim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/wire"
)

const scenarioTimeout = 30 * time.Second

// TestFaultFreeScenarioIsExact: with no faults configured, every
// operation must succeed and the value oracle stays authoritative for
// the whole run.
func TestFaultFreeScenarioIsExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		sc := DefaultScenario(seed)
		sc.Faults = Config{}
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		sc.Ops = 8
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Errors != 0 {
			t.Errorf("seed %d: %d errored ops in a fault-free run", seed, res.Errors)
		}
		if !res.Trusted {
			t.Errorf("seed %d: oracle lost trust in a fault-free run", seed)
		}
		if res.Faults != 0 {
			t.Errorf("seed %d: %d faults injected with zero config", seed, res.Faults)
		}
	}
}

// TestPartitionSurfacesDeadline: a full one-way partition from ground to
// the only callee makes every call fail with ErrDeadline — typed, not a
// hang — and recovery succeeds.
func TestPartitionSurfacesDeadline(t *testing.T) {
	sc := Scenario{
		Seed:              42,
		Spaces:            2,
		Ops:               3,
		PartitionPermille: 1000, // every op partitioned
		CallTimeout:       50 * time.Millisecond,
	}
	res, err := RunWithTimeout(sc, scenarioTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("no op errored under a guaranteed partition")
	}
}

func TestCrashRestartScenario(t *testing.T) {
	sc := Scenario{
		Seed:          7,
		Spaces:        3,
		Ops:           8,
		CrashPermille: 1000, // crash somebody before every op
		CallTimeout:   100 * time.Millisecond,
	}
	res, err := RunWithTimeout(sc, scenarioTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Error("no crash-restarts happened")
	}
	// Crashes between sessions lose no ground-owned data, so with no
	// message faults the values must still be exact.
	if !res.Trusted || res.Errors != 0 {
		t.Errorf("crash-only scenario: errors=%d trusted=%v, want 0/true", res.Errors, res.Trusted)
	}
}

// TestChaosSoak is the main acceptance run: N seeded scenarios with the
// full fault mix, every invariant check enabled. The seed count scales
// with -short and the CHAOS_SEEDS env var (CI soak uses ~100, the local
// acceptance run 500). About a third of the seeds draw a concurrent
// scenario (goroutine-per-space workload with the histcheck oracle);
// CHAOS_CONCURRENT=1 forces it for every seed, which is what the
// nightly soak runs. On failure the shrunk repro is written to
// $CHAOS_ARTIFACT_DIR (if set) so CI can upload it.
func TestChaosSoak(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS=%q: %v", s, err)
		}
		seeds = n
	}
	start := uint64(1)
	if s := os.Getenv("CHAOS_START"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_START=%q: %v", s, err)
		}
		start = n
	}
	forceConcurrent := os.Getenv("CHAOS_CONCURRENT") == "1"
	// CHAOS_RECOVER=1 runs every seed with transparent exchange recovery
	// on (retry budgets, replay caches, incarnation fencing) under the
	// full fault mix, crashes and partitions included — the recovery
	// soak CI runs. About a third of seeds draw Recovery anyway.
	forceRecovery := os.Getenv("CHAOS_RECOVER") == "1"
	scenario := func(seed uint64) Scenario {
		sc := DefaultScenario(seed)
		if forceConcurrent {
			sc.Concurrent = true
		}
		if forceRecovery {
			sc.Recovery = true
		}
		return sc
	}
	var ops, errs, verified int
	var faults, retries, replays, fences uint64
	for i := 0; i < seeds; i++ {
		seed := start + uint64(i)
		res, err := RunWithTimeout(scenario(seed), scenarioTimeout)
		if err != nil {
			var fe *FailureError
			if errors.As(err, &fe) {
				min, minErr := Shrink(scenario(seed), scenarioTimeout)
				report := fmt.Sprintf("seed %d failed: %v\n\nshrunk repro: %+v\nshrunk failure: %v",
					seed, err, min, minErr)
				if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
					path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.txt", seed))
					if werr := os.WriteFile(path, []byte(report+"\n"), 0o644); werr != nil {
						t.Logf("writing failure artifact: %v", werr)
					} else {
						t.Logf("failure artifact written to %s", path)
					}
				}
				t.Fatal(report)
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		ops += res.Ops
		errs += res.Errors
		verified += res.Verified
		faults += res.Faults
		retries += res.Retries
		replays += res.Replays
		fences += res.FenceTrips
	}
	t.Logf("soak: %d seeds, %d ops, %d typed errors, %d value-verified ops, %d faults injected, %d retries, %d replays, %d fence trips",
		seeds, ops, errs, verified, faults, retries, replays, fences)
	if faults == 0 {
		t.Error("soak injected zero faults — fault mix is miswired")
	}
	if verified == 0 {
		t.Error("soak verified zero values — oracle is miswired")
	}
	if forceRecovery && retries == 0 {
		t.Error("recovery soak retried zero exchanges — retry budget is miswired")
	}
}

// TestRecoveryTransientOnlySoak is the recovery acceptance gate: with
// transparent recovery on and the fault schedule restricted to transient
// classes (drops, duplicates, corruption, delays — no crashes, no
// partitions), at least 95% of seeds must complete with ZERO failed
// sessions. Without retries the same schedules surface typed errors on
// most seeds; with them every transient fault must be absorbed inside
// the retry budget. The rare residual (a delay burst straddling the
// budget) is what the 5% slack is for.
func TestRecoveryTransientOnlySoak(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	if s := os.Getenv("CHAOS_RECOVER_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CHAOS_RECOVER_SEEDS=%q: %v", s, err)
		}
		seeds = n
	}
	clean := 0
	var faults, retries, succ uint64
	for i := 0; i < seeds; i++ {
		seed := uint64(1 + i)
		sc := DefaultScenario(seed)
		sc.Recovery = true
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Errors == 0 {
			clean++
		} else {
			t.Logf("seed %d: %d/%d sessions failed under transient-only faults (retries %d)",
				seed, res.Errors, res.Ops, res.Retries)
		}
		faults += res.Faults
		retries += res.Retries
		succ += res.Replays
	}
	t.Logf("recovery soak: %d/%d seeds fully clean, %d faults absorbed, %d retries, %d replay-cache hits",
		clean, seeds, faults, retries, succ)
	if faults == 0 {
		t.Fatal("transient-only soak injected zero faults — fault mix is miswired")
	}
	if min := (seeds*95 + 99) / 100; clean < min {
		t.Errorf("only %d/%d seeds completed without session errors, want >= %d (95%%)", clean, seeds, min)
	}
}

// TestDupOnlyWriteBackAtMostOnce aims duplicate faults exclusively at
// WRITEBACK frames under the concurrent multi-client workload: a
// duplicated write-back that were applied twice — in particular replayed
// late, after another client's newer write — would make the recorded
// history non-linearizable, which the histcheck oracle inside Run turns
// into a FailureError. Every seed must come back clean.
func TestDupOnlyWriteBackAtMostOnce(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	var faults uint64
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sc := DefaultScenario(seed)
		sc.Concurrent = true
		sc.Recovery = true
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		sc.Faults = Config{
			DupPermille: 500,
			OnlyKinds:   []wire.Kind{wire.KindWriteBack},
		}
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Errors != 0 {
			t.Errorf("seed %d: %d sessions failed — duplicated write-backs must be absorbed silently", seed, res.Errors)
		}
		faults += res.Faults
	}
	if faults == 0 {
		t.Error("dup-only write-back chaos injected zero faults — OnlyKinds filter is miswired")
	}
}

// TestDroppedAllocReplyNeverDoubleAllocates drops ALLOCBATCH replies so
// the client's retry arrives at an origin that has already allocated:
// the origin must answer from its replay cache (visible as Replays > 0)
// rather than run the allocation again, and the value oracle plus the
// end-of-op idle checks must stay green throughout.
func TestDroppedAllocReplyNeverDoubleAllocates(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	var faults, replays uint64
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sc := DefaultScenario(seed)
		sc.Concurrent = false
		sc.Recovery = true
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		sc.Faults = Config{
			DropPermille: 350,
			OnlyKinds:    []wire.Kind{wire.KindAllocReply, wire.KindWriteBackAck},
		}
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Errors != 0 {
			t.Errorf("seed %d: %d sessions failed — dropped acks must be absorbed by retry + replay", seed, res.Errors)
		}
		if !res.Trusted {
			t.Errorf("seed %d: value oracle lost trust — a retried exchange was re-executed", seed)
		}
		faults += res.Faults
		replays += res.Replays
	}
	if faults == 0 {
		t.Error("drop-only ack chaos injected zero faults — OnlyKinds filter is miswired")
	}
	if replays == 0 {
		t.Error("no retried exchange was served from the replay cache — dedup is miswired")
	}
}

// TestPrefetchFetchChaosOracle aims the whole fault mix at FETCH traffic
// only, with the asynchronous speculative prefetcher forced on: dropped,
// duplicated, corrupted, and delayed speculative fetches must never serve
// a stale or corrupted read (the value oracle inside Run), never wedge
// the in-flight registry (checkAllIdle counts leaked entries at every
// quiescent point), and never leave a space unrecoverable.
func TestPrefetchFetchChaosOracle(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	var faults uint64
	var verified int
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sc := DefaultScenario(seed)
		sc.Prefetch = true
		sc.Policy = core.PolicySmart // lazy/eager never fault-fetch pages
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		sc.Faults = Config{
			DropPermille:    80,
			DupPermille:     80,
			CorruptPermille: 60,
			DelayPermille:   120,
			OnlyKinds:       []wire.Kind{wire.KindFetch, wire.KindFetchReply},
		}
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faults += res.Faults
		verified += res.Verified
	}
	if faults == 0 {
		t.Error("fetch chaos injected zero faults — OnlyKinds filter is miswired")
	}
	if verified == 0 {
		t.Error("fetch chaos verified zero values — oracle is miswired")
	}
}

// TestChunkStreamChaosOracle aims the whole fault mix at KindFetchChunk
// frames only, with the streaming threshold forced low enough that every
// closure fetch becomes a multi-chunk stream. A dropped, corrupted,
// duplicated, or delayed chunk must degrade to an ordinary refetch —
// never a torn install (the value oracle inside Run checks every
// fault-free sum against the model), never a wedged in-flight registry
// or background drain (checkAllIdle runs at every quiescent point), and
// never an unrecoverable space.
func TestChunkStreamChaosOracle(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	var faults uint64
	var verified int
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sc := DefaultScenario(seed)
		sc.Policy = core.PolicySmart // lazy/eager never fault-fetch pages
		sc.StreamChunkBytes = 128
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		sc.Faults = Config{
			DropPermille:    80,
			DupPermille:     80,
			CorruptPermille: 60,
			DelayPermille:   120,
			OnlyKinds:       []wire.Kind{wire.KindFetchChunk},
		}
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faults += res.Faults
		verified += res.Verified
	}
	if faults == 0 {
		t.Error("chunk chaos injected zero faults — streams never engaged or OnlyKinds is miswired")
	}
	if verified == 0 {
		t.Error("chunk chaos verified zero values — oracle is miswired")
	}
}

// TestShrinkMinimizes: drive the shrinker with a deterministic failure
// triggered through the real pipeline is hard to arrange on demand, so
// this exercises its search behavior against a stub predicate via the
// exported surface: a scenario that fails if and only if it still has
// dup faults and at least 2 ops shrinks down to exactly that.
func TestShrinkMinimizes(t *testing.T) {
	// An impossible-to-fail scenario shrinks to itself with a nil error.
	sc := DefaultScenario(3)
	sc.Faults = Config{}
	sc.CrashPermille = 0
	sc.PartitionPermille = 0
	min, err := Shrink(sc, scenarioTimeout)
	if err != nil {
		t.Fatalf("fault-free scenario reported failure: %v", err)
	}
	if min.Ops != sc.Ops {
		t.Errorf("non-failing scenario was shrunk: %+v", min)
	}
}

// TestSeedReproducibility: the same seed injects the identical fault
// schedule (the harness's whole premise).
func TestSeedReproducibility(t *testing.T) {
	sc := DefaultScenario(11)
	res1, err1 := RunWithTimeout(sc, scenarioTimeout)
	res2, err2 := RunWithTimeout(sc, scenarioTimeout)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("same seed, different outcome: %v vs %v", err1, err2)
	}
	if res1.Ops != res2.Ops || res1.Crashes != res2.Crashes {
		t.Errorf("same seed, different shape: %+v vs %+v", res1, res2)
	}
}

// TestInvariantCheckerWiredIntoScenarios proves the harness would catch
// a broken invariant: a scenario network is built, state is corrupted
// by hand, and the same checks the harness runs must fire.
func TestInvariantCheckerWiredIntoScenarios(t *testing.T) {
	sc := DefaultScenario(1)
	sc.Faults = Config{}
	sc.CrashPermille = 0
	sc.PartitionPermille = 0
	sc.Ops = 1
	if _, err := RunWithTimeout(sc, scenarioTimeout); err != nil {
		t.Fatal(err)
	}
	// The scenario's runtimes enable core.Options.CheckInvariants; the
	// mutation tests for the checker itself live in internal/core. Here
	// we only pin that a FailureError formats a usable repro line.
	fe := &FailureError{Seed: 99, Reason: "example", Events: []Event{
		{Fault: FaultDrop, From: 1, To: 2, Seq: 4},
	}}
	msg := fe.Error()
	for _, want := range []string{"seed 99", "example", "drop 1->2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message %q missing %q", msg, want)
		}
	}
}

// Guard: ErrInvariant classification — a FailureError wrapping is not
// accidentally triggered by ordinary deadline errors.
func TestDeadlineIsNotInvariant(t *testing.T) {
	if errors.Is(core.ErrDeadline, core.ErrInvariant) {
		t.Fatal("ErrDeadline must not match ErrInvariant")
	}
}

func ExampleRun() {
	sc := DefaultScenario(1)
	sc.Faults = Config{}
	sc.CrashPermille = 0
	sc.PartitionPermille = 0
	sc.Ops = 2
	_, err := Run(sc)
	fmt.Println(err)
	// Output: <nil>
}

// Package faultsim is a deterministic fault-injection harness for the
// smart RPC protocol. It layers a seed-driven chaos wrapper over the
// in-memory transport (faultsim.go), generates randomized session
// workloads with a value oracle (workload.go), and shrinks failing
// scenarios to a minimal reproducing configuration (shrink.go). The
// invariants it checks live in internal/core/invariant.go.
//
// Every decision — which frames are dropped, duplicated, delayed,
// corrupted, which edges are partitioned, when a space crashes — derives
// from a single uint64 seed, so a failure report is one number. The
// decision for a frame is a pure function of the frame's protocol
// identity (from, to, kind, seq), not of goroutine arrival order, so the
// same seed injects the same faults even when the Go scheduler
// interleaves differently between runs.
package faultsim

import (
	"fmt"
	"sync"

	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// Fault enumerates the injected fault classes.
type Fault uint8

const (
	// FaultDrop silently discards a frame.
	FaultDrop Fault = iota
	// FaultDup delivers a frame twice, back to back.
	FaultDup
	// FaultCorrupt flips bits in a copy of the frame's payload before
	// delivery. The sender's buffer is never touched — a corrupted
	// baseline on both ends would mask exactly the desynchronization
	// bugs this harness exists to find.
	FaultCorrupt
	// FaultDelay holds a reply frame back until later traffic has passed
	// it on the same edge (a bounded reordering). Only replies are
	// delayed: the protocol's single thread of control means a delayed
	// request would execute concurrently with its successor, a situation
	// the runtime is explicitly not specified to survive, while a delayed
	// reply exercises the real late-arrival paths.
	FaultDelay
	// FaultPartition reports a frame discarded by a one-way partition.
	FaultPartition
)

func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultCorrupt:
		return "corrupt"
	case FaultDelay:
		return "delay"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Config sets per-frame fault probabilities in permille (0–1000). The
// zero value injects nothing.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// DropPermille is the chance a frame is discarded.
	DropPermille int
	// DupPermille is the chance a frame is delivered twice.
	DupPermille int
	// CorruptPermille is the chance a frame's payload is bit-flipped.
	CorruptPermille int
	// DelayPermille is the chance a reply frame is held back and
	// re-delivered after 1–3 subsequent frames on its edge.
	DelayPermille int
	// OnlyKinds, when non-empty, restricts drop/dup/corrupt/delay to
	// frames of the listed kinds; everything else passes through clean.
	// Partitions are unaffected — a dead link does not read headers.
	// Used by targeted oracles (e.g. "every Validate reply is lost")
	// that must fault one exchange while the recovery path's own
	// traffic stays reliable.
	OnlyKinds []wire.Kind
}

// targets reports whether the config's kind filter admits k.
func (cfg *Config) targets(k wire.Kind) bool {
	if len(cfg.OnlyKinds) == 0 {
		return true
	}
	for _, only := range cfg.OnlyKinds {
		if k == only {
			return true
		}
	}
	return false
}

// Event records one injected fault, in injection order. The sequence of
// events is the schedule a failing seed reproduces.
type Event struct {
	Fault  Fault
	From   uint32
	To     uint32
	Kind   wire.Kind
	Seq    uint64
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("%s %d->%d %v seq=%d", e.Fault, e.From, e.To, e.Kind, e.Seq)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// held is a delayed frame waiting on its edge's traffic counter.
type held struct {
	m   wire.Message
	due uint64 // deliver when the edge counter reaches this value
}

type edgeState struct {
	counter uint64
	queue   []held
}

// Chaos wraps a transport.Network, injecting faults on the send path.
// Attach through it instead of through the network; Recv and routing are
// untouched. All methods are safe for concurrent use.
type Chaos struct {
	cfg Config
	net *transport.Network

	mu         sync.Mutex
	enabled    bool
	edges      map[uint64]*edgeState
	partitions map[uint64]bool // one-way blocked edges
	events     []Event
	counts     [5]uint64
}

// New wraps net with fault injection configured by cfg. Injection starts
// enabled; SetEnabled(false) turns the wrapper into a transparent
// pass-through (used by harnesses to settle a network between checks).
func New(net *transport.Network, cfg Config) *Chaos {
	return &Chaos{
		cfg:        cfg,
		net:        net,
		enabled:    true,
		edges:      make(map[uint64]*edgeState),
		partitions: make(map[uint64]bool),
	}
}

// Attach registers a space on the underlying network and returns a node
// whose sends pass through the fault injector.
func (c *Chaos) Attach(id uint32) (transport.Node, error) {
	inner, err := c.net.Attach(id)
	if err != nil {
		return nil, err
	}
	return &chaosNode{inner: inner, c: c}, nil
}

// SetEnabled toggles injection. While disabled, frames pass through
// untouched (held frames stay held until traffic or Drain releases them).
func (c *Chaos) SetEnabled(on bool) {
	c.mu.Lock()
	c.enabled = on
	c.mu.Unlock()
}

// PartitionOneWay blocks (or with on=false, heals) all traffic from one
// space to another. The reverse direction is unaffected.
func (c *Chaos) PartitionOneWay(from, to uint32, on bool) {
	c.mu.Lock()
	if on {
		c.partitions[edgeKey(from, to)] = true
	} else {
		delete(c.partitions, edgeKey(from, to))
	}
	c.mu.Unlock()
}

// Events returns a copy of the injected-fault schedule so far.
func (c *Chaos) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Count returns how many faults of the given class were injected.
func (c *Chaos) Count(f Fault) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[f]
}

// Total returns how many faults of any class were injected.
func (c *Chaos) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Drain discards every held (delayed) frame. Call it when tearing a
// scenario down so a frame held on a now-quiet edge cannot leak into the
// next scenario's state.
func (c *Chaos) Drain() {
	c.mu.Lock()
	for _, es := range c.edges {
		es.queue = nil
	}
	c.mu.Unlock()
}

func edgeKey(from, to uint32) uint64 { return uint64(from)<<32 | uint64(to) }

// splitmix64 is the standard 64-bit mixer; one call per frame gives the
// independent uniform draws for each fault class.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// frameHash derives the decision word for a frame from its protocol
// identity alone. (from, seq) is unique per originating runtime and kind
// disambiguates the request/reply halves of a round trip, so scheduler
// interleaving cannot change which frames get faulted.
func (c *Chaos) frameHash(from, to uint32, kind wire.Kind, seq uint64) uint64 {
	h := splitmix64(c.cfg.Seed ^ uint64(from)<<48 ^ uint64(to)<<32 ^ uint64(kind)<<24)
	return splitmix64(h ^ seq)
}

func (c *Chaos) record(f Fault, m wire.Message, detail string) {
	c.counts[f]++
	c.events = append(c.events, Event{
		Fault: f, From: m.From, To: m.To, Kind: m.Kind, Seq: m.Seq, Detail: detail,
	})
}

// inject decides this frame's fate and returns the frames to actually
// deliver, in order (none for a drop, two for a dup, previously held
// frames that just came due are prepended by the caller).
//
// Draw layout from the 64-bit decision word: independent permille draws
// for drop, dup, corrupt, delay from separate 10-bit-ish slices, plus
// detail bits for corrupt offsets and delay distance. A frame receives
// at most one fault class (priority: partition, drop, delay, dup,
// corrupt) — compound faults on a single frame add schedule-decoding
// complexity without adding coverage, since compounds arise anyway
// across frames.
func (c *Chaos) inject(from uint32, m wire.Message) []wire.Message {
	// The underlying transport stamps m.From during Send, i.e. after this
	// layer runs, so the sender's identity comes in separately.
	m.From = from

	c.mu.Lock()
	defer c.mu.Unlock()

	es := c.edges[edgeKey(m.From, m.To)]
	if es == nil {
		es = &edgeState{}
		c.edges[edgeKey(m.From, m.To)] = es
	}
	es.counter++

	// Release held frames that this frame's passage makes due. They
	// deliver ahead of the current frame: they were sent first, the
	// delay only let `due - sent` newer frames overtake them.
	var out []wire.Message
	if len(es.queue) > 0 {
		rest := es.queue[:0]
		for _, h := range es.queue {
			if h.due <= es.counter {
				out = append(out, h.m)
			} else {
				rest = append(rest, h)
			}
		}
		es.queue = rest
	}

	if !c.enabled {
		return append(out, m)
	}
	if c.partitions[edgeKey(m.From, m.To)] {
		c.record(FaultPartition, m, "")
		// An undelivered zero-copy frame has no consumer left to release
		// its pooled buffer; recycle it here.
		m.ReleaseFrame()
		return out
	}
	if !c.cfg.targets(m.Kind) {
		return append(out, m)
	}

	h := c.frameHash(m.From, m.To, m.Kind, m.Seq)
	drawDrop := int(h % 1000)
	drawDelay := int(h >> 10 % 1000)
	drawDup := int(h >> 20 % 1000)
	drawCorrupt := int(h >> 30 % 1000)

	switch {
	case drawDrop < c.cfg.DropPermille:
		c.record(FaultDrop, m, "")
		m.ReleaseFrame() // no consumer left for a zero-copy frame
		return out
	case drawDelay < c.cfg.DelayPermille && m.Kind.IsReply():
		dist := uint64(h>>40%3) + 1
		c.record(FaultDelay, m, fmt.Sprintf("hold %d", dist))
		es.queue = append(es.queue, held{m: m, due: es.counter + dist})
		return out
	case drawDup < c.cfg.DupPermille:
		c.record(FaultDup, m, "")
		// The two deliveries must not share payload storage: the first
		// consumer of a zero-copy chunk frame releases its pooled buffer
		// after installing, which would leave the duplicate aliasing
		// recycled memory. The duplicate carries its own copy, no frame.
		d := m
		d.Payload = append([]byte(nil), m.Payload...)
		d.Frame = nil
		return append(out, m, d)
	case drawCorrupt < c.cfg.CorruptPermille && len(m.Payload) > 0:
		flips := int(h>>42%3) + 1
		cp := append([]byte(nil), m.Payload...)
		detail := ""
		for i := 0; i < flips; i++ {
			w := splitmix64(h + uint64(i) + 1)
			off := int(w % uint64(len(cp)))
			bit := byte(1) << (w >> 17 % 8)
			cp[off] ^= bit
			if i > 0 {
				detail += ","
			}
			detail += fmt.Sprintf("byte %d bit %#02x", off, bit)
		}
		m.Payload = cp
		c.record(FaultCorrupt, m, detail)
		return append(out, m)
	default:
		return append(out, m)
	}
}

type chaosNode struct {
	inner transport.Node
	c     *Chaos
}

func (n *chaosNode) ID() uint32 { return n.inner.ID() }

func (n *chaosNode) Send(m wire.Message) error {
	var firstErr error
	for _, d := range n.c.inject(n.inner.ID(), m) {
		if err := n.inner.Send(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (n *chaosNode) Recv() (wire.Message, error) { return n.inner.Recv() }
func (n *chaosNode) Close() error                { return n.inner.Close() }

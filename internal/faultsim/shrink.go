package faultsim

import (
	"time"
)

// Shrink minimizes a failing scenario: fewer sessions, fewer fault
// classes, fewer spaces — while the scenario keeps failing. The result
// is the smallest schedule found plus its failure, which is what a
// debugging session wants to start from (a 2-space, 1-session, one-
// fault-class repro instead of a 4-space storm).
//
// Each candidate is re-run for real, so shrinking is only meaningful for
// deterministically reproducing failures; a candidate that stops failing
// is simply not taken. timeout bounds each candidate run (a shrink
// candidate can hang in ways the original did not).
func Shrink(sc Scenario, timeout time.Duration) (Scenario, error) {
	fails := func(c Scenario) error {
		_, err := RunWithTimeout(c, timeout)
		return err
	}
	best := sc
	bestErr := fails(best)
	if bestErr == nil {
		// Not reproducible under the timeout — nothing to shrink.
		return sc, nil
	}
	try := func(c Scenario) bool {
		if err := fails(c); err != nil {
			best, bestErr = c, err
			return true
		}
		return false
	}

	// 1. Halve the session count while the failure persists, then step
	// down linearly.
	for best.Ops > 1 {
		c := best
		c.Ops /= 2
		if !try(c) {
			break
		}
	}
	for best.Ops > 1 {
		c := best
		c.Ops--
		if !try(c) {
			break
		}
	}

	// 2. Remove whole fault classes one at a time.
	zero := []func(*Scenario){
		func(c *Scenario) { c.Faults.DropPermille = 0 },
		func(c *Scenario) { c.Faults.DupPermille = 0 },
		func(c *Scenario) { c.Faults.CorruptPermille = 0 },
		func(c *Scenario) { c.Faults.DelayPermille = 0 },
		func(c *Scenario) { c.CrashPermille = 0 },
		func(c *Scenario) { c.PartitionPermille = 0 },
	}
	for _, z := range zero {
		c := best
		z(&c)
		try(c)
	}

	// 3. Fewer spaces.
	for best.Spaces > 2 {
		c := best
		c.Spaces--
		if !try(c) {
			break
		}
	}
	return best, bestErr
}

// RunWithTimeout runs a scenario with a wall-clock bound; exceeding it is
// itself a failure (a hang is as real a bug as a corruption).
func RunWithTimeout(sc Scenario, timeout time.Duration) (Result, error) {
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(sc)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(timeout):
		return Result{}, &FailureError{
			Seed:   sc.Seed,
			Reason: "scenario did not complete within " + timeout.String() + " (deadlock or livelock)",
		}
	}
}

package wire

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/xdr"
)

func sampleMessage() Message {
	return Message{
		Kind:    KindCall,
		Session: 7,
		Seq:     99,
		From:    1,
		To:      2,
		Proc:    "searchTree",
		Payload: []byte{1, 2, 3, 4, 5},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	got, err := Decode(xdr.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestMessageRoundTripWithError(t *testing.T) {
	m := Message{Kind: KindReturn, Session: 1, Seq: 2, From: 3, To: 4, Err: "proc not found", Payload: []byte{}}
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	got, err := Decode(xdr.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != m.Err {
		t.Errorf("Err = %q, want %q", got.Err, m.Err)
	}
}

func TestDecodeRejectsInvalidKind(t *testing.T) {
	enc := xdr.NewEncoder(8)
	enc.PutUint32(999)
	if _, err := Decode(xdr.NewDecoder(enc.Bytes())); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := sampleMessage()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	full := enc.Bytes()
	for n := 0; n < len(full); n += 4 {
		if _, err := Decode(xdr.NewDecoder(full[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestKindStringAndReplies(t *testing.T) {
	if KindCall.String() != "call" || KindFetchReply.String() != "fetch-reply" {
		t.Error("Kind.String mismatch")
	}
	if Kind(0).Valid() || !KindInvalidate.Valid() {
		t.Error("Kind.Valid mismatch")
	}
	replies := []Kind{KindReturn, KindFetchReply, KindWriteBackAck, KindInvalidateAck, KindAllocReply}
	for _, k := range replies {
		if !k.IsReply() {
			t.Errorf("%v not classified as reply", k)
		}
	}
	requests := []Kind{KindCall, KindFetch, KindWriteBack, KindInvalidate, KindAllocBatch}
	for _, k := range requests {
		if k.IsReply() {
			t.Errorf("%v classified as reply", k)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	m := sampleMessage()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("frame round trip mismatch")
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{sampleMessage(), {Kind: KindFetch, Seq: 1, Payload: []byte{9}}, {Kind: KindInvalidate, Payload: []byte{}}}
	for i := range msgs {
		if err := WriteFrame(&buf, &msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != msgs[i].Kind {
			t.Errorf("frame %d kind %v, want %v", i, got.Kind, msgs[i].Kind)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("after last frame: %v, want EOF", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	r := bytes.NewReader([]byte{0x7f, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(r); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("huge frame err = %v", err)
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	msgs := []Message{
		sampleMessage(),
		{Kind: KindReturn, Err: "x"},
		{Kind: KindFetch, Proc: "abc", Payload: make([]byte, 33)},
	}
	for _, m := range msgs {
		enc := xdr.NewEncoder(64)
		m.Encode(enc)
		if got := m.WireSize(); got != enc.Len() {
			t.Errorf("WireSize() = %d, encoded = %d for %+v", got, enc.Len(), m)
		}
	}
}

func TestLongPtr(t *testing.T) {
	lp := LongPtr{Space: 3, Addr: 0x1000, Type: 9}
	if lp.IsNull() {
		t.Error("non-null long pointer reported null")
	}
	if !(LongPtr{}).IsNull() {
		t.Error("zero long pointer not null")
	}
	if got := lp.String(); got != "<3:0x1000:t9>" {
		t.Errorf("String() = %q", got)
	}
}

func TestCallPayloadRoundTrip(t *testing.T) {
	p := CallPayload{
		Args: []Arg{
			ScalarArg(types.Int64, 0xdeadbeef),
			PtrArg(LongPtr{Space: 1, Addr: 0x2000, Type: 5}),
			ScalarArg(types.Float64, 123),
		},
		Items: []DataItem{
			{LP: LongPtr{Space: 2, Addr: 0x40, Type: 5}, Dirty: true, Bytes: []byte{1, 2, 3}},
		},
		Parts: []uint32{1, 2, 7},
	}
	got, err := DecodeCallPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("call payload round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestCallPayloadEmpty(t *testing.T) {
	p := CallPayload{}
	got, err := DecodeCallPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 0 || len(got.Items) != 0 {
		t.Errorf("empty payload round trip = %+v", got)
	}
}

func TestCallPayloadRejectsBadKind(t *testing.T) {
	e := xdr.NewEncoder(16)
	e.PutUint32(1)  // one arg
	e.PutUint32(77) // invalid kind
	e.PutUint64(0)
	if _, err := DecodeCallPayload(e.Bytes()); err == nil {
		t.Error("invalid arg kind accepted")
	}
}

func TestFetchPayloadRoundTrip(t *testing.T) {
	p := FetchPayload{
		Wants: []LongPtr{
			{Space: 1, Addr: 0x10, Type: 2},
			{Space: 1, Addr: 0x20, Type: 2},
		},
		Budget: 8192,
	}
	got, err := DecodeFetchPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("fetch payload round trip mismatch: %+v", got)
	}
}

func TestFetchPayloadSpeculativeRoundTrip(t *testing.T) {
	p := FetchPayload{
		Wants:       []LongPtr{{Space: 1, Addr: 0x10, Type: 2}},
		Budget:      8192,
		Primary:     1,
		Speculative: true,
	}
	got, err := DecodeFetchPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("speculative fetch payload round trip mismatch: %+v", got)
	}
}

// TestFetchPayloadEncodingUnchanged pins the demand-path wire layout: the
// speculative flag lives in the top bit of the Primary word, so a
// non-speculative payload must encode byte-identically to the old format
// (same size, same bytes — the committed benchmark baselines depend on
// it), an old-format frame must decode with the flag clear, and the only
// difference a speculative frame carries is that one bit.
func TestFetchPayloadEncodingUnchanged(t *testing.T) {
	p := FetchPayload{
		Wants:   []LongPtr{{Space: 2, Addr: 0x10040, Type: 3}},
		Budget:  4096,
		Primary: 1,
	}
	oldFormat := []byte{
		0, 0, 0, 1, // want count
		0, 0, 0, 2, 0, 1, 0, 0x40, 0, 0, 0, 3, // long pointer
		0, 0, 0x10, 0, // budget
		0, 0, 0, 1, // primary (old frames never set bit 31)
	}
	if got := p.Encode(); !reflect.DeepEqual(got, oldFormat) {
		t.Errorf("demand fetch encoding changed:\ngot  %x\nwant %x", got, oldFormat)
	}
	got, err := DecodeFetchPayload(oldFormat)
	if err != nil {
		t.Fatalf("old-format frame failed to decode: %v", err)
	}
	if got.Speculative || got.Primary != 1 || got.Budget != 4096 || len(got.Wants) != 1 {
		t.Errorf("old-format frame decoded wrong: %+v", got)
	}
	p.Speculative = true
	spec := p.Encode()
	if len(spec) != len(oldFormat) {
		t.Fatalf("speculative flag changed the frame size: %d vs %d", len(spec), len(oldFormat))
	}
	want := append([]byte(nil), oldFormat...)
	want[len(want)-4] |= 0x80 // only delta: the top bit of the primary word
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("speculative encoding differs beyond the flag bit:\ngot  %x\nwant %x", spec, want)
	}
}

func TestItemsPayloadRoundTrip(t *testing.T) {
	p := ItemsPayload{Items: []DataItem{
		{LP: LongPtr{Space: 1, Addr: 0x10, Type: 2}, Bytes: []byte{0xFF}},
		{LP: LongPtr{Space: 4, Addr: 0x99, Type: 3}, Dirty: true, Bytes: []byte{}},
	}}
	got, err := DecodeItemsPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("items payload round trip mismatch: %+v", got)
	}
}

func TestDeltaItemRoundTrip(t *testing.T) {
	p := ItemsPayload{Items: []DataItem{
		{LP: LongPtr{Space: 1, Addr: 0x10, Type: 2}, Dirty: true, Delta: true, BaseVer: 7, Bytes: []byte{0, 0, 0, 1, 0, 0, 0, 4}},
		{LP: LongPtr{Space: 1, Addr: 0x20, Type: 2}, Delta: true, BaseVer: 1, Bytes: []byte{0, 0, 0, 0}},
		{LP: LongPtr{Space: 1, Addr: 0x30, Type: 2}, Dirty: true, Bytes: []byte{9}},
	}}
	enc := p.Encode()
	if len(enc) != itemsEncodedSize(p.Items) {
		t.Errorf("itemsEncodedSize = %d, encoded %d", itemsEncodedSize(p.Items), len(enc))
	}
	got, err := DecodeItemsPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("delta items round trip mismatch: %+v", got)
	}
}

// TestFullItemEncodingUnchanged pins the wire layout of a full-body item:
// the flags word sits exactly where the dirty boolean used to, so
// protocol revisions without delta shipping (and the committed benchmark
// baselines) see byte-identical payloads.
func TestFullItemEncodingUnchanged(t *testing.T) {
	p := ItemsPayload{Items: []DataItem{
		{LP: LongPtr{Space: 1, Addr: 0x10, Type: 2}, Dirty: true, Bytes: []byte{0xAB}},
	}}
	want := []byte{
		0, 0, 0, 1, // item count
		0, 0, 0, 1, 0, 0, 0, 0x10, 0, 0, 0, 2, // long pointer
		0, 0, 0, 1, // flags word == old dirty bool
		0, 0, 0, 1, 0xAB, 0, 0, 0, // opaque bytes + padding
	}
	if got := p.Encode(); !reflect.DeepEqual(got, want) {
		t.Errorf("full item encoding changed:\ngot  %x\nwant %x", got, want)
	}
}

func TestItemsRejectUnknownFlags(t *testing.T) {
	p := ItemsPayload{Items: []DataItem{{LP: LongPtr{Space: 1, Addr: 4, Type: 2}, Bytes: []byte{}}}}
	enc := p.Encode()
	enc[4+EncodedLongPtrSize+3] = 0x40 // corrupt the flags word
	if _, err := DecodeItemsPayload(enc); err == nil {
		t.Fatal("unknown item flags decoded without error")
	}
}

func TestAllocBatchRoundTrip(t *testing.T) {
	p := AllocBatchPayload{
		Allocs: []AllocReq{{Token: 1, Type: 5}, {Token: 2, Type: 6}},
		Frees:  []LongPtr{{Space: 1, Addr: 0x30, Type: 5}},
	}
	got, err := DecodeAllocBatchPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("alloc batch round trip mismatch: %+v", got)
	}
}

func TestAllocReplyRoundTrip(t *testing.T) {
	p := AllocReplyPayload{Addrs: []vmem.VAddr{0x100, 0x200}}
	got, err := DecodeAllocReplyPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Addrs, p.Addrs) {
		t.Errorf("alloc reply round trip = %+v", got)
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(kind uint8, session, seq uint64, from, to uint32, proc string, payload []byte) bool {
		k := Kind(kind%10) + 1
		m := Message{Kind: k, Session: session, Seq: seq, From: from, To: to, Proc: proc, Payload: payload}
		if m.Payload == nil {
			m.Payload = []byte{}
		}
		enc := xdr.NewEncoder(m.WireSize())
		m.Encode(enc)
		got, err := Decode(xdr.NewDecoder(enc.Bytes()))
		if err != nil {
			return false
		}
		if got.Payload == nil {
			got.Payload = []byte{}
		}
		return reflect.DeepEqual(got, m) && m.WireSize() == enc.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Robustness: arbitrary bytes must never panic any decoder — errors only.
func TestQuickDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("decoder panicked on %x: %v", b, r)
				ok = false
			}
		}()
		_, _ = Decode(xdr.NewDecoder(b))
		_, _ = DecodeCallPayload(b)
		_, _ = DecodeFetchPayload(b)
		_, _ = DecodeItemsPayload(b)
		_, _ = DecodeAllocBatchPayload(b)
		_, _ = DecodeAllocReplyPayload(b)
		_, _ = ReadFrame(bytes.NewReader(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Mutation robustness: take a valid encoded message and flip bytes; the
// decoder must fail cleanly or succeed, never panic.
func TestMutatedMessageRobustness(t *testing.T) {
	m := sampleMessage()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	base := enc.Bytes()
	for i := 0; i < len(base); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := make([]byte, len(base))
			copy(mut, base)
			mut[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic decoding mutation at byte %d: %v", i, r)
					}
				}()
				_, _ = Decode(xdr.NewDecoder(mut))
			}()
		}
	}
}

func TestFuncArgRoundTrip(t *testing.T) {
	p := CallPayload{
		Args:  []Arg{FuncArg(3, "TreeService.search"), ScalarArg(types.Int64, 1)},
		Parts: []uint32{1},
	}
	got, err := DecodeCallPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Args[0].Kind != types.Func || got.Args[0].FnSpace != 3 || got.Args[0].FnName != "TreeService.search" {
		t.Errorf("func arg round trip = %+v", got.Args[0])
	}
}

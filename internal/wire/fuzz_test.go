package wire

import (
	"bytes"
	"testing"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
)

// Fuzz targets for the wire codecs. The contract under test is uniform:
// a decoder fed arbitrary bytes returns an error or a valid value — it
// never panics, and never lets a hostile length field force allocation
// disproportionate to the input. Successfully decoded frames must
// round-trip through the encoder unchanged.

// fuzzMessage is a small but representative frame for corpus seeding.
func fuzzMessage() *Message {
	p := CallPayload{
		Args: []Arg{
			ScalarArg(types.Int64, 42),
			PtrArg(LongPtr{Space: 2, Addr: 0x10040, Type: 1}),
			FuncArg(3, "visit"),
		},
		Items: []DataItem{
			{LP: LongPtr{Space: 1, Addr: 0x10000, Type: 1}, Dirty: true, Bytes: []byte{1, 2, 3, 4}},
			{LP: LongPtr{Space: 1, Addr: 0x10020, Type: 1}, Delta: true, BaseVer: 3, Bytes: []byte{0, 0, 0, 1, 0, 0, 0, 8, 0, 0, 0, 2, 9, 9, 0, 0}},
		},
		Parts: []uint32{2, 3},
	}
	m := &Message{
		Kind: KindCall, Session: 0x100000007, Seq: 9, From: 1, To: 2,
		Proc: "sum", Payload: p.Encode(),
	}
	m.Seal()
	return m
}

func FuzzFrameDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, fuzzMessage()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that decoded must re-encode and decode to the same
		// message (From travels on the wire, so it round-trips here even
		// though the checksum does not cover it).
		var out bytes.Buffer
		if err := WriteFrame(&out, &m); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		m2, err := ReadFrame(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m.Kind != m2.Kind || m.Session != m2.Session || m.Seq != m2.Seq ||
			m.From != m2.From || m.To != m2.To || m.Proc != m2.Proc ||
			m.Err != m2.Err || m.Sum != m2.Sum || !bytes.Equal(m.Payload, m2.Payload) {
			t.Fatalf("round trip changed the message:\n%+v\n%+v", m, m2)
		}
	})
}

func FuzzCallPayloadDecode(f *testing.F) {
	f.Add(fuzzMessage().Payload)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeCallPayload(data)
		if err != nil {
			return
		}
		enc := p.Encode()
		p2, err := DecodeCallPayload(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(p2.Args) != len(p.Args) || len(p2.Items) != len(p.Items) || len(p2.Parts) != len(p.Parts) {
			t.Fatalf("round trip changed shape: %+v vs %+v", p, p2)
		}
	})
}

func FuzzFetchPayloadDecode(f *testing.F) {
	p := FetchPayload{
		Wants:   []LongPtr{{Space: 2, Addr: 0x10000, Type: 1}, {Space: 2, Addr: 0x10020, Type: 1}},
		Budget:  4096,
		Primary: 1,
	}
	f.Add(p.Encode())
	spec := p
	spec.Speculative = true
	f.Add(spec.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeFetchPayload(data)
		if err != nil {
			return
		}
		if int(q.Primary) > len(q.Wants) {
			t.Fatalf("decoder admitted primary %d > wants %d", q.Primary, len(q.Wants))
		}
		if q.Primary&FetchSpeculative != 0 {
			t.Fatalf("decoder left the speculative bit in primary %#x", q.Primary)
		}
		// A decoded payload must survive the encoder round trip with the
		// flag bit intact.
		q2, err := DecodeFetchPayload(q.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q2.Speculative != q.Speculative || q2.Primary != q.Primary || len(q2.Wants) != len(q.Wants) {
			t.Fatalf("round trip changed shape: %+v vs %+v", q, q2)
		}
	})
}

func FuzzItemsPayloadDecode(f *testing.F) {
	p := ItemsPayload{Items: []DataItem{
		{LP: LongPtr{Space: 1, Addr: 0x10000, Type: 1}, Dirty: true, Bytes: make([]byte, 40)},
	}}
	f.Add(p.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeItemsPayload(data)
	})
}

func FuzzValidatePayloadDecode(f *testing.F) {
	p := ValidatePayload{Tuples: []ValidateTuple{
		{LP: LongPtr{Space: 2, Addr: 0x10000, Type: 1}, Ver: 3, Sum: 0xdeadbeefcafef00d},
		{LP: LongPtr{Space: 2, Addr: 0x10020, Type: 1}, Ver: 1, Sum: 1},
	}}
	f.Add(p.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeValidatePayload(data)
		if err != nil {
			return
		}
		enc := q.Encode()
		q2, err := DecodeValidatePayload(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(q2.Tuples) != len(q.Tuples) {
			t.Fatalf("round trip changed shape: %+v vs %+v", q, q2)
		}
		for i := range q.Tuples {
			if q.Tuples[i] != q2.Tuples[i] {
				t.Fatalf("round trip changed tuple %d: %+v vs %+v", i, q.Tuples[i], q2.Tuples[i])
			}
		}
	})
}

func FuzzValidateReplyPayloadDecode(f *testing.F) {
	p := ValidateReplyPayload{Items: []ValidateItem{
		{LP: LongPtr{Space: 2, Addr: 0x10000, Type: 1}, Form: ValidateCurrent},
		{LP: LongPtr{Space: 2, Addr: 0x10020, Type: 1}, Form: ValidateDelta, Bytes: []byte{0, 0, 0, 1, 0, 0, 0, 8, 0, 0, 0, 2, 9, 9}},
		{LP: LongPtr{Space: 2, Addr: 0x10040, Type: 1}, Form: ValidateFull, Bytes: make([]byte, 16)},
	}}
	f.Add(p.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeValidateReplyPayload(data)
		if err != nil {
			return
		}
		for _, it := range q.Items {
			if it.Form < ValidateCurrent || it.Form > ValidateFull {
				t.Fatalf("decoder admitted form %d", it.Form)
			}
			if it.Form == ValidateCurrent && len(it.Bytes) != 0 {
				t.Fatalf("decoder admitted current item with %d bytes", len(it.Bytes))
			}
		}
	})
}

func FuzzFetchChunkDecode(f *testing.F) {
	fetch := FetchChunkPayload{
		XID:   9,
		Chunk: 2,
		Items: []DataItem{
			{LP: LongPtr{Space: 1, Addr: 0x10000, Type: 1}, Bytes: make([]byte, 40)},
			{LP: LongPtr{Space: 1, Addr: 0x10040, Type: 1}, Bytes: []byte{1, 2, 3}},
		},
	}
	f.Add(fetch.Encode())
	fin := fetch
	fin.Final = true
	f.Add(fin.Encode())
	val := FetchChunkPayload{
		XID: 3, Final: true, Validate: true,
		VItems: []ValidateItem{
			{LP: LongPtr{Space: 2, Addr: 0x10000, Type: 1}, Form: ValidateCurrent},
			{LP: LongPtr{Space: 2, Addr: 0x10020, Type: 1}, Form: ValidateFull, Bytes: make([]byte, 16)},
		},
	}
	f.Add(val.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeFetchChunkPayload(data)
		if err != nil {
			// ChunkIsFinal must never panic, whatever the decoder thought.
			_ = ChunkIsFinal(data)
			return
		}
		if q.Validate && len(q.Items) != 0 {
			t.Fatalf("decoder admitted fetch items on a validate chunk")
		}
		if !q.Validate && len(q.VItems) != 0 {
			t.Fatalf("decoder admitted validate items on a fetch chunk")
		}
		// The dispatcher's cheap finality probe must agree with the full
		// decode on every frame the decoder accepts.
		if got := ChunkIsFinal(data); got != q.Final {
			t.Fatalf("ChunkIsFinal = %v, decoded Final = %v", got, q.Final)
		}
		enc := q.Encode()
		q2, err := DecodeFetchChunkPayload(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q2.XID != q.XID || q2.Chunk != q.Chunk || q2.Final != q.Final ||
			q2.Validate != q.Validate || len(q2.Items) != len(q.Items) || len(q2.VItems) != len(q.VItems) {
			t.Fatalf("round trip changed shape: %+v vs %+v", q, q2)
		}
	})
}

func FuzzAllocPayloadDecode(f *testing.F) {
	ab := AllocBatchPayload{
		Allocs: []AllocReq{{Token: 0xF0000001, Type: 1}},
		Frees:  []LongPtr{{Space: 2, Addr: 0x10000, Type: 1}},
	}
	ar := AllocReplyPayload{Addrs: []vmem.VAddr{0x10040}}
	f.Add(ab.Encode())
	f.Add(ar.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeAllocBatchPayload(data)
		_, _ = DecodeAllocReplyPayload(data)
	})
}

package wire

import (
	"bytes"
	"testing"

	"smartrpc/internal/xdr"
)

// --- attempt-tagged sequence numbers ---

func TestSeqAttemptHelpers(t *testing.T) {
	cases := []struct {
		xid     uint64
		attempt uint8
	}{
		{0, 0},
		{1, 0},
		{1, 1},
		{99, 255},
		{SeqXIDMask, 7},
	}
	for _, c := range cases {
		seq := SeqWithAttempt(c.xid, c.attempt)
		if got := SeqXID(seq); got != c.xid {
			t.Errorf("SeqXID(SeqWithAttempt(%d, %d)) = %d, want %d", c.xid, c.attempt, got, c.xid)
		}
		if got := SeqAttempt(seq); got != c.attempt {
			t.Errorf("SeqAttempt(SeqWithAttempt(%d, %d)) = %d, want %d", c.xid, c.attempt, got, c.attempt)
		}
	}
	// An overlong xid is masked into the xid bits, never into the attempt
	// ordinal.
	seq := SeqWithAttempt(^uint64(0), 3)
	if SeqXID(seq) != SeqXIDMask || SeqAttempt(seq) != 3 {
		t.Errorf("overlong xid: got (%d, %d), want (%d, 3)", SeqXID(seq), SeqAttempt(seq), SeqXIDMask)
	}
	// Attempt zero leaves a plain xid unchanged: the seed's sequence
	// numbers are valid attempt-0 sequence numbers.
	if SeqWithAttempt(42, 0) != 42 {
		t.Errorf("SeqWithAttempt(42, 0) = %d, want 42", SeqWithAttempt(42, 0))
	}
}

// --- optional trailing incarnation word ---

func TestIncarnationZeroIsByteIdentical(t *testing.T) {
	// An unstamped message (Inc == 0) must encode exactly as the seed
	// format did: no trailing word, same wire size, same checksum input.
	m := sampleMessage()
	m.Seal()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	plain := append([]byte(nil), enc.Bytes()...)

	stamped := m
	stamped.Inc = 7
	stamped.Seal()
	enc2 := xdr.NewEncoder(64)
	stamped.Encode(enc2)
	withInc := enc2.Bytes()

	if len(withInc) != len(plain)+4 {
		t.Fatalf("stamped frame is %d bytes, want %d (+4 for the incarnation word)", len(withInc), len(plain))
	}
	if m.WireSize() != len(plain) || stamped.WireSize() != len(withInc) {
		t.Errorf("WireSize mismatch: plain %d (encoded %d), stamped %d (encoded %d)",
			m.WireSize(), len(plain), stamped.WireSize(), len(withInc))
	}
	// The stamped frame is the plain frame plus the trailing word — except
	// for the checksum, which must cover the incarnation.
	if m.Sum == stamped.Sum {
		t.Error("checksum does not cover the incarnation word")
	}
}

func TestIncarnationRoundTrip(t *testing.T) {
	m := sampleMessage()
	m.Inc = 12345
	m.Seal()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	got, err := Decode(xdr.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Inc != 12345 {
		t.Errorf("Inc = %d, want 12345", got.Inc)
	}
	if !got.SumOK() {
		t.Error("round-tripped stamped frame fails checksum verification")
	}
}

func TestIncarnationOldFrameDecodesAsZero(t *testing.T) {
	// A frame from a sender that never stamps (or an older build) ends at
	// Sum; decode must yield Inc == 0 and a valid checksum.
	m := sampleMessage()
	m.Seal()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	got, err := Decode(xdr.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Inc != 0 {
		t.Errorf("Inc = %d, want 0 for an unstamped frame", got.Inc)
	}
	if !got.SumOK() {
		t.Error("unstamped frame fails checksum verification")
	}
}

func TestIncarnationCorruptionCaughtBySum(t *testing.T) {
	m := sampleMessage()
	m.Inc = 9
	m.Seal()
	enc := xdr.NewEncoder(64)
	m.Encode(enc)
	raw := append([]byte(nil), enc.Bytes()...)
	raw[len(raw)-1] ^= 0xff // flip a bit inside the trailing incarnation word
	got, err := Decode(xdr.NewDecoder(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.SumOK() {
		t.Error("corrupted incarnation word passed checksum verification")
	}
}

func TestIncarnationFrameIO(t *testing.T) {
	// The length-prefixed frame path (WriteFrame/ReadFrame, the TCP
	// transport's framing) must carry the trailing word too.
	m := sampleMessage()
	m.Inc = 3
	m.Seal()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Inc != 3 {
		t.Errorf("Inc = %d, want 3", got.Inc)
	}
	if !got.SumOK() {
		t.Error("framed stamped message fails checksum verification")
	}
	got.ReleaseFrame()
}

// Package wire defines the messages the Smart RPC runtimes exchange and
// their canonical (XDR) encoding, plus length-prefixed framing for stream
// transports.
//
// The message set follows the protocol in §3 of the paper:
//
//   - Call / Return carry RPC arguments and results; both piggyback the
//     modified data set (coherency protocol, §3.4) and flush the batched
//     remote-allocation requests (§3.5) travel just before them.
//   - Fetch / FetchReply move remotely referenced data on the first page
//     fault (§3.2), with the eager transitive closure attached (§3.3).
//   - WriteBack and Invalidate implement the end-of-session tasks of the
//     ground runtime (§3.4).
//   - AllocBatch / AllocReply carry the batched extended_malloc and
//     extended_free requests (§3.5).
//   - Validate / ValidateReply revalidate stale pages kept warm across
//     sessions: the client offers (pointer, version, content hash) tuples
//     and the origin answers per item with a zero-byte "still current"
//     token, a range delta against the cached baseline, or a full body.
package wire

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"smartrpc/internal/xdr"
)

// Kind discriminates message types.
type Kind uint32

// Message kinds.
const (
	KindCall Kind = iota + 1
	KindReturn
	KindFetch
	KindFetchReply
	KindWriteBack
	KindWriteBackAck
	KindInvalidate
	KindInvalidateAck
	KindAllocBatch
	KindAllocReply
	KindValidate
	KindValidateReply
	// KindFetchChunk is one bounded chunk of a streamed Fetch or Validate
	// reply: the origin emits a sequence of chunk frames sharing the
	// request's Seq instead of one monolithic reply frame, so the client
	// can decode and install the closure while later chunks are still in
	// flight. Each chunk is individually checksummed.
	KindFetchChunk
)

var kindNames = map[Kind]string{
	KindCall: "call", KindReturn: "return",
	KindFetch: "fetch", KindFetchReply: "fetch-reply",
	KindWriteBack: "write-back", KindWriteBackAck: "write-back-ack",
	KindInvalidate: "invalidate", KindInvalidateAck: "invalidate-ack",
	KindAllocBatch: "alloc-batch", KindAllocReply: "alloc-reply",
	KindValidate: "validate", KindValidateReply: "validate-reply",
	KindFetchChunk: "fetch-chunk",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint32(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// IsReply reports whether k is a response kind (routed to a waiting
// requester rather than dispatched to a handler).
func (k Kind) IsReply() bool {
	switch k {
	case KindReturn, KindFetchReply, KindWriteBackAck, KindInvalidateAck, KindAllocReply, KindValidateReply,
		KindFetchChunk:
		return true
	default:
		return false
	}
}

// ReplyKind returns the response kind paired with a request kind (zero
// for reply kinds and unknown kinds).
func (k Kind) ReplyKind() Kind {
	switch k {
	case KindCall:
		return KindReturn
	case KindFetch:
		return KindFetchReply
	case KindWriteBack:
		return KindWriteBackAck
	case KindInvalidate:
		return KindInvalidateAck
	case KindAllocBatch:
		return KindAllocReply
	case KindValidate:
		return KindValidateReply
	default:
		return 0
	}
}

// Seq layout: the low 56 bits are the exchange id (xid), allocated once
// per logical request/reply exchange; the high 8 bits are the attempt
// ordinal. A retried exchange keeps its xid but bumps the attempt, so
// every attempt has a distinct Seq — the pending table keys the full
// Seq, which makes a late reply to an abandoned attempt miss cleanly
// instead of being mistaken for the current attempt's reply, while the
// origin's reply cache keys the xid to recognize the retry.
const (
	SeqAttemptShift = 56
	SeqXIDMask      = uint64(1)<<SeqAttemptShift - 1
)

// SeqXID extracts the exchange id from a sequence number.
func SeqXID(seq uint64) uint64 { return seq & SeqXIDMask }

// SeqAttempt extracts the attempt ordinal from a sequence number
// (zero for first attempts and for all pre-retry frames).
func SeqAttempt(seq uint64) uint8 { return uint8(seq >> SeqAttemptShift) }

// SeqWithAttempt combines an exchange id with an attempt ordinal.
func SeqWithAttempt(xid uint64, attempt uint8) uint64 {
	return (xid & SeqXIDMask) | uint64(attempt)<<SeqAttemptShift
}

// Message is one unit of communication between address spaces.
type Message struct {
	// Kind discriminates the payload.
	Kind Kind
	// Session identifies the RPC session the message belongs to.
	Session uint64
	// Seq correlates requests with replies within one (From, To) flow.
	Seq uint64
	// From and To are address-space identifiers.
	From, To uint32
	// Proc is the remote procedure name (Call only).
	Proc string
	// Err carries a remote error rendering (Return only; empty = ok).
	Err string
	// Payload is the kind-specific body, already XDR-encoded.
	Payload []byte
	// Sum is the sender-stamped integrity checksum (Checksum over the
	// message's stable fields). The runtime verifies it on receipt so a
	// frame corrupted in flight surfaces as a typed error instead of
	// silently installing wrong bytes.
	Sum uint32
	// Inc is the sender's restart incarnation, stamped by origins into
	// replies so a client can detect that the origin crashed and
	// restarted mid-session (its heap is fresh; any address the client
	// still holds is resurrected garbage). Zero means "not stamped": the
	// field is encoded as an optional trailing word only when nonzero,
	// so frames from runtimes that never restarted — and all frames from
	// older builds — stay byte-identical and decode Inc as zero.
	Inc uint32
	// Frame, when non-nil, is the ref-counted pooled buffer Payload
	// aliases (zero-copy chunk frames). It never travels on the wire; the
	// final consumer calls ReleaseFrame after the last item decoded from
	// Payload has been installed.
	Frame *FrameBuf
}

// FrameBuf is a ref-counted pooled buffer backing a zero-copy message
// payload. Two variants share the type: send-side chunk buffers own an
// encoder (the origin encodes each chunk payload straight into a pooled
// buffer), and receive-side frame buffers own the raw frame body a
// stream reader filled. When the count reaches zero the storage returns
// to its pool; a forgotten release only costs the recycle (the garbage
// collector still reclaims the buffer).
type FrameBuf struct {
	enc  *xdr.Encoder
	bp   *[]byte
	refs atomic.Int32
}

// chunkFramePool recycles send-side chunk buffers (FrameBuf + encoder
// pairs). A streamed closure reuses a handful of buffers for its whole
// chunk sequence: the client releases each chunk after installing it,
// returning the buffer for a later chunk of the same (or any) stream.
var chunkFramePool = sync.Pool{New: func() any {
	return &FrameBuf{enc: xdr.NewEncoder(4096)}
}}

// NewChunkBuf returns a pooled send-side chunk buffer with one
// reference. Encode the chunk payload into Enc(), then attach the buffer
// to the outgoing message via Frame.
func NewChunkBuf() *FrameBuf {
	fb := chunkFramePool.Get().(*FrameBuf)
	fb.enc.Reset()
	fb.refs.Store(1)
	return fb
}

// Enc returns the buffer's encoder (send-side buffers only).
func (fb *FrameBuf) Enc() *xdr.Encoder { return fb.enc }

// Retain adds a reference.
func (fb *FrameBuf) Retain() { fb.refs.Add(1) }

// Release drops a reference, returning the storage to its pool at zero.
// Extra releases are no-ops: a duplicated frame can reach two consumers
// under fault injection, and the duplicate must not corrupt the pool.
func (fb *FrameBuf) Release() {
	if fb.refs.Add(-1) != 0 {
		return
	}
	switch {
	case fb.enc != nil:
		if cap(fb.enc.Bytes()) <= maxPooledFrame {
			chunkFramePool.Put(fb)
		}
	case fb.bp != nil:
		bp := fb.bp
		fb.bp = nil
		if cap(*bp) <= maxPooledFrame {
			frameBufPool.Put(bp)
		}
	}
}

// ReleaseFrame releases the pooled buffer backing a zero-copy payload.
// Safe on any message (no-op when no buffer is attached); the payload
// must not be read afterwards.
func (m *Message) ReleaseFrame() {
	if fb := m.Frame; fb != nil {
		m.Frame = nil
		fb.Release()
	}
}

// Checksum computes the integrity checksum over the message's stable
// fields: everything except From (stamped by the transport after the
// sender's runtime has sealed the message) and Sum itself. FNV-1a: no
// table, one multiply per byte, deterministic across platforms.
func (m *Message) Checksum() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	step := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	word := func(v uint64, n int) {
		for i := n - 1; i >= 0; i-- {
			step(byte(v >> (8 * i)))
		}
	}
	word(uint64(m.Kind), 4)
	word(m.Session, 8)
	word(m.Seq, 8)
	word(uint64(m.To), 4)
	word(uint64(len(m.Proc)), 4)
	for i := 0; i < len(m.Proc); i++ {
		step(m.Proc[i])
	}
	word(uint64(len(m.Err)), 4)
	for i := 0; i < len(m.Err); i++ {
		step(m.Err[i])
	}
	for _, b := range m.Payload {
		step(b)
	}
	if m.Inc != 0 {
		word(uint64(m.Inc), 4)
	}
	return h
}

// Seal stamps the integrity checksum; call after every other field
// except From is final.
func (m *Message) Seal() { m.Sum = m.Checksum() }

// SumOK verifies the integrity checksum.
func (m *Message) SumOK() bool { return m.Sum == m.Checksum() }

// WireSize returns the encoded size of the message, used by the network
// cost model.
func (m *Message) WireSize() int {
	n := 8*4 +
		4 + len(m.Proc) + pad4(len(m.Proc)) +
		4 + len(m.Err) + pad4(len(m.Err)) +
		4 + len(m.Payload) + pad4(len(m.Payload))
	if m.Inc != 0 {
		n += 4
	}
	return n
}

func pad4(n int) int { return (4 - n%4) % 4 }

// Encode appends the XDR encoding of m to enc.
func (m *Message) Encode(enc *xdr.Encoder) {
	enc.PutUint32(uint32(m.Kind))
	enc.PutUint64(m.Session)
	enc.PutUint64(m.Seq)
	enc.PutUint32(m.From)
	enc.PutUint32(m.To)
	enc.PutString(m.Proc)
	enc.PutString(m.Err)
	enc.PutOpaque(m.Payload)
	enc.PutUint32(m.Sum)
	if m.Inc != 0 {
		enc.PutUint32(m.Inc)
	}
}

// Decode parses one message from dec. The payload is copied out of the
// decoder's buffer, so the buffer may be reused immediately.
func Decode(dec *xdr.Decoder) (Message, error) {
	m, err := decodeAlias(dec)
	if err != nil {
		return m, err
	}
	p := make([]byte, len(m.Payload))
	copy(p, m.Payload)
	m.Payload = p
	return m, nil
}

// decodeAlias parses one message from dec with the payload aliasing the
// decoder's buffer. Callers own the buffer's lifetime.
func decodeAlias(dec *xdr.Decoder) (Message, error) {
	var m Message
	k, err := dec.Uint32()
	if err != nil {
		return m, fmt.Errorf("wire: kind: %w", err)
	}
	m.Kind = Kind(k)
	if !m.Kind.Valid() {
		return m, fmt.Errorf("wire: invalid kind %d", k)
	}
	if m.Session, err = dec.Uint64(); err != nil {
		return m, fmt.Errorf("wire: session: %w", err)
	}
	if m.Seq, err = dec.Uint64(); err != nil {
		return m, fmt.Errorf("wire: seq: %w", err)
	}
	if m.From, err = dec.Uint32(); err != nil {
		return m, fmt.Errorf("wire: from: %w", err)
	}
	if m.To, err = dec.Uint32(); err != nil {
		return m, fmt.Errorf("wire: to: %w", err)
	}
	if m.Proc, err = dec.String(); err != nil {
		return m, fmt.Errorf("wire: proc: %w", err)
	}
	if m.Err, err = dec.String(); err != nil {
		return m, fmt.Errorf("wire: err: %w", err)
	}
	if m.Payload, err = dec.Opaque(); err != nil {
		return m, fmt.Errorf("wire: payload: %w", err)
	}
	if m.Sum, err = dec.Uint32(); err != nil {
		return m, fmt.Errorf("wire: sum: %w", err)
	}
	// Optional trailing incarnation word: frames from senders that never
	// restarted (and frames from older builds) end at Sum and decode
	// Inc as zero.
	if dec.Remaining() >= 4 {
		if m.Inc, err = dec.Uint32(); err != nil {
			return m, fmt.Errorf("wire: inc: %w", err)
		}
	}
	return m, nil
}

// maxFrame bounds a single framed message (16 MiB), protecting stream
// readers from corrupt length prefixes.
const maxFrame = 16 << 20

// maxPooledFrame is the largest scratch buffer the frame pools retain.
// Occasional giant frames are served by one-shot allocations instead of
// pinning megabytes inside the pools forever.
const maxPooledFrame = 1 << 20

// framePools recycle the per-frame scratch buffers of the stream framing
// layer. A connection in steady state encodes and decodes thousands of
// messages; with the pools, neither direction allocates once the buffers
// have grown to the session's working frame size. Reuse is safe because
// Decode copies the payload and strings out of the frame body before it
// is returned.
var (
	frameEncPool = sync.Pool{New: func() any { return xdr.NewEncoder(4096) }}
	frameBufPool = sync.Pool{New: func() any { b := make([]byte, 4096); return &b }}
)

// WriteFrame writes m to w as a length-prefixed frame.
func WriteFrame(w io.Writer, m *Message) error {
	enc := frameEncPool.Get().(*xdr.Encoder)
	defer func() {
		if cap(enc.Bytes()) <= maxPooledFrame {
			enc.Reset()
			frameEncPool.Put(enc)
		}
	}()
	m.Encode(enc)
	body := enc.Bytes()
	var hdr [4]byte
	n := len(body)
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r and decodes it.
// Chunk frames (KindFetchChunk) decode zero-copy: the payload aliases
// the pooled frame buffer, which travels with the message as Frame and
// returns to the pool when the consumer calls ReleaseFrame. All other
// kinds copy the payload out so the buffer recycles immediately.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n < 0 || n > maxFrame {
		return Message{}, fmt.Errorf("wire: frame length %d out of range", n)
	}
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	putBack := func() {
		if cap(*bp) <= maxPooledFrame {
			frameBufPool.Put(bp)
		}
	}
	if _, err := io.ReadFull(r, body); err != nil {
		putBack()
		return Message{}, fmt.Errorf("wire: read frame body: %w", err)
	}
	m, err := decodeAlias(xdr.NewDecoder(body))
	if err != nil {
		putBack()
		return Message{}, err
	}
	if m.Kind == KindFetchChunk {
		fb := &FrameBuf{bp: bp}
		fb.refs.Store(1)
		m.Frame = fb
		return m, nil
	}
	p := make([]byte, len(m.Payload))
	copy(p, m.Payload)
	m.Payload = p
	putBack()
	return m, nil
}

package wire

import (
	"bytes"
	"testing"
)

// BenchmarkWireFrame measures a framed encode+decode round trip of a
// FETCH-reply-sized message through the pooled scratch buffers. Run with
// -benchmem: the pools keep the framing layer itself allocation-free, so
// the per-op allocations are only the decoded Message's owned copies
// (payload and strings).
func BenchmarkWireFrame(b *testing.B) {
	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i)
	}
	m := Message{
		Kind:    KindFetchReply,
		Session: 7,
		Seq:     42,
		From:    1,
		To:      2,
		Payload: payload,
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, &m); err != nil {
			b.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if got.Seq != m.Seq || len(got.Payload) != len(m.Payload) {
			b.Fatal("round trip mismatch")
		}
	}
}

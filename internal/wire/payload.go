package wire

import (
	"fmt"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/xdr"
)

// LongPtr is the paper's long-format pointer: it designates a datum
// anywhere in the distributed system. It is the wire identity of every
// transferred object.
type LongPtr struct {
	// Space is the address-space identifier of the datum's original
	// location.
	Space uint32
	// Addr is the datum's address, valid within Space.
	Addr vmem.VAddr
	// Type is the data-type specifier resolved through the type database.
	Type types.ID
}

// IsNull reports whether the long pointer is the distinguished null value.
func (lp LongPtr) IsNull() bool { return lp == LongPtr{} }

// String renders the long pointer for diagnostics.
func (lp LongPtr) String() string {
	return fmt.Sprintf("<%d:%#x:t%d>", lp.Space, uint32(lp.Addr), uint32(lp.Type))
}

// EncodedLongPtrSize is the canonical size of a long pointer (three words).
const EncodedLongPtrSize = 12

func putLongPtr(e *xdr.Encoder, lp LongPtr) {
	e.PutUint32(lp.Space)
	e.PutUint32(uint32(lp.Addr))
	e.PutUint32(uint32(lp.Type))
}

func getLongPtr(d *xdr.Decoder) (LongPtr, error) {
	sp, err := d.Uint32()
	if err != nil {
		return LongPtr{}, err
	}
	ad, err := d.Uint32()
	if err != nil {
		return LongPtr{}, err
	}
	ty, err := d.Uint32()
	if err != nil {
		return LongPtr{}, err
	}
	return LongPtr{Space: sp, Addr: vmem.VAddr(ad), Type: types.ID(ty)}, nil
}

// boundCount validates a decoded element count against a hard cap and
// against the bytes actually remaining in the buffer (minSize is the
// smallest possible encoding of one element). Without the second check a
// corrupt or hostile count in a few-byte input could force a multi-
// hundred-megabyte preallocation before the first element fails to parse.
func boundCount(d *xdr.Decoder, n uint32, minSize int, what string) (int, error) {
	if n > 1<<22 {
		return 0, fmt.Errorf("wire: %s count %d out of range", what, n)
	}
	if int(n) > d.Remaining()/minSize {
		return 0, fmt.Errorf("wire: %s count %d exceeds the %d bytes remaining", what, n, d.Remaining())
	}
	return int(n), nil
}

// Arg is one RPC argument or result: a scalar (canonical 64-bit
// representation plus its kind), a long pointer, or a remote function
// pointer (a capability naming a procedure in some address space).
type Arg struct {
	// Kind is the scalar kind, types.Ptr, or types.Func.
	Kind types.Kind
	// Word holds the scalar value's canonical bits.
	Word uint64
	// Ptr holds the long pointer for Kind == types.Ptr.
	Ptr LongPtr
	// FnSpace and FnName identify a remote function for Kind == types.Func.
	FnSpace uint32
	FnName  string
}

// ScalarArg builds a scalar argument.
func ScalarArg(kind types.Kind, word uint64) Arg {
	return Arg{Kind: kind, Word: word}
}

// PtrArg builds a pointer argument.
func PtrArg(lp LongPtr) Arg {
	return Arg{Kind: types.Ptr, Ptr: lp}
}

// FuncArg builds a remote function pointer argument.
func FuncArg(space uint32, name string) Arg {
	return Arg{Kind: types.Func, FnSpace: space, FnName: name}
}

func putArg(e *xdr.Encoder, a Arg) {
	e.PutUint32(uint32(a.Kind))
	switch a.Kind {
	case types.Ptr:
		putLongPtr(e, a.Ptr)
	case types.Func:
		e.PutUint32(a.FnSpace)
		e.PutString(a.FnName)
	default:
		e.PutUint64(a.Word)
	}
}

func getArg(d *xdr.Decoder) (Arg, error) {
	k, err := d.Uint32()
	if err != nil {
		return Arg{}, err
	}
	a := Arg{Kind: types.Kind(k)}
	if !a.Kind.Valid() {
		return Arg{}, fmt.Errorf("wire: invalid arg kind %d", k)
	}
	switch a.Kind {
	case types.Ptr:
		a.Ptr, err = getLongPtr(d)
		return a, err
	case types.Func:
		if a.FnSpace, err = d.Uint32(); err != nil {
			return a, err
		}
		a.FnName, err = d.String()
		return a, err
	default:
		a.Word, err = d.Uint64()
		return a, err
	}
}

// Item flag bits. The flags word occupies the position the dirty boolean
// held in earlier protocol revisions (XDR booleans are a full word), so a
// full-body item encodes byte-identically to the old format.
const (
	// ItemDirty marks an item carrying an unwritten modification.
	ItemDirty uint32 = 1 << 0
	// ItemDelta marks an item whose Bytes hold a byte-range diff against
	// the baseline the receiver recorded at crossing version BaseVer,
	// instead of a full canonical encoding (delta-shipping coherency).
	ItemDelta uint32 = 1 << 1

	itemFlagsMask = ItemDirty | ItemDelta
)

// DataItem is one transferred object: its system-wide identity (a long
// pointer to the original location) and its value. Dirty propagates the
// modified bit with the data so that whichever space holds the object
// knows it must eventually be written back (§3.4).
//
// For a full item (Delta == false), Bytes is the object's canonical
// encoding. For a delta item, Bytes is an encoded run vector
// (internal/delta) to be patched onto the baseline both sides recorded
// for this datum at crossing version BaseVer; BaseVer is absent from the
// wire when Delta is false.
type DataItem struct {
	LP      LongPtr
	Dirty   bool
	Delta   bool
	BaseVer uint32
	Bytes   []byte
}

func putItems(e *xdr.Encoder, items []DataItem) {
	e.PutUint32(uint32(len(items)))
	for _, it := range items {
		putLongPtr(e, it.LP)
		var flags uint32
		if it.Dirty {
			flags |= ItemDirty
		}
		if it.Delta {
			flags |= ItemDelta
		}
		e.PutUint32(flags)
		if it.Delta {
			e.PutUint32(it.BaseVer)
		}
		e.PutOpaque(it.Bytes)
	}
}

// itemsEncodedSize returns the exact encoded size of an item vector, so
// payload encoders can size their buffer once instead of growing it —
// fetch replies carry most of the bytes the system ever moves.
func itemsEncodedSize(items []DataItem) int {
	n := 4
	for _, it := range items {
		n += EncodedLongPtrSize + 4 + 4 + (len(it.Bytes)+3)&^3
		if it.Delta {
			n += 4
		}
	}
	return n
}

// getItems decodes a data-item vector. The items' Bytes alias the
// decoder's buffer rather than copying it: decoded items are installed (or
// written through) synchronously by the receiving runtime while the
// message payload is still live, so the copy per item would be pure
// allocation churn on the hottest path in the system. Callers must treat
// the bytes as read-only.
func getItems(d *xdr.Decoder) ([]DataItem, error) {
	nw, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	n, err := boundCount(d, nw, 20, "item")
	if err != nil {
		return nil, err
	}
	items := make([]DataItem, 0, n)
	for i := 0; i < n; i++ {
		var it DataItem
		if it.LP, err = getLongPtr(d); err != nil {
			return nil, err
		}
		flags, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		if flags&^itemFlagsMask != 0 {
			return nil, fmt.Errorf("wire: unknown item flags %#x", flags)
		}
		it.Dirty = flags&ItemDirty != 0
		it.Delta = flags&ItemDelta != 0
		if it.Delta {
			if it.BaseVer, err = d.Uint32(); err != nil {
				return nil, err
			}
		}
		if it.Bytes, err = d.Opaque(); err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	return items, nil
}

// CallPayload is the body of Call and Return messages: the argument (or
// result) vector, the piggybacked data items (the modified data set plus,
// for eager transfers, the closure of the pointer arguments), and the set
// of address spaces that have participated in the session so far (the
// ground runtime multicasts the end-of-session invalidation to them).
type CallPayload struct {
	Args  []Arg
	Items []DataItem
	Parts []uint32
}

// Encode returns the canonical encoding of p.
func (p *CallPayload) Encode() []byte {
	e := xdr.NewEncoder(16 + 32*len(p.Args) + itemsEncodedSize(p.Items) + 4*len(p.Parts))
	e.PutUint32(uint32(len(p.Args)))
	for _, a := range p.Args {
		putArg(e, a)
	}
	putItems(e, p.Items)
	e.PutUint32(uint32(len(p.Parts)))
	for _, part := range p.Parts {
		e.PutUint32(part)
	}
	return e.Bytes()
}

// DecodeCallPayload parses a Call/Return body.
func DecodeCallPayload(b []byte) (CallPayload, error) {
	d := xdr.NewDecoder(b)
	var p CallPayload
	nw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	n, err := boundCount(d, nw, 12, "arg")
	if err != nil {
		return p, err
	}
	p.Args = make([]Arg, 0, n)
	for i := 0; i < n; i++ {
		a, err := getArg(d)
		if err != nil {
			return p, err
		}
		p.Args = append(p.Args, a)
	}
	if p.Items, err = getItems(d); err != nil {
		return p, err
	}
	npw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	np, err := boundCount(d, npw, 4, "participant")
	if err != nil {
		return p, err
	}
	p.Parts = make([]uint32, 0, np)
	for i := 0; i < np; i++ {
		v, err := d.Uint32()
		if err != nil {
			return p, err
		}
		p.Parts = append(p.Parts, v)
	}
	return p, nil
}

// FetchSpeculative is the flag bit marking a speculative (prefetch) FETCH.
// It rides in the top bit of the encoded Primary word: boundCount caps any
// want vector at 1<<22 entries, so a legitimate primary count can never
// reach bit 31, old-format frames never have it set, and setting it changes
// neither the frame size nor any demand-path byte. The flag is accounting
// only — servers answer speculative fetches exactly like demand fetches.
const FetchSpeculative uint32 = 1 << 31

// FetchPayload requests the data for a set of long pointers — all the
// entries of the faulted page's data allocation table — plus an eager
// closure budget in bytes (§3.3). The first Primary wants are the faulting
// page's own entries and seed the server's closure traversal; any wants
// beyond them are batched ride-alongs (stranded entries of partially
// resident pages) that are served but not expanded, so they cannot starve
// the faulting page's frontier of closure budget. Primary == 0 means all
// wants are primary (the single-want protocol). Speculative marks a
// prefetch issued ahead of any fault (carried as FetchSpeculative in the
// Primary word).
type FetchPayload struct {
	Wants       []LongPtr
	Budget      uint32
	Primary     uint32
	Speculative bool
}

// Encode returns the canonical encoding of p.
func (p *FetchPayload) Encode() []byte {
	e := xdr.NewEncoder(12 + EncodedLongPtrSize*len(p.Wants))
	e.PutUint32(uint32(len(p.Wants)))
	for _, lp := range p.Wants {
		putLongPtr(e, lp)
	}
	e.PutUint32(p.Budget)
	primary := p.Primary
	if p.Speculative {
		primary |= FetchSpeculative
	}
	e.PutUint32(primary)
	return e.Bytes()
}

// DecodeFetchPayload parses a Fetch body.
func DecodeFetchPayload(b []byte) (FetchPayload, error) {
	d := xdr.NewDecoder(b)
	var p FetchPayload
	nw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	n, err := boundCount(d, nw, EncodedLongPtrSize, "want")
	if err != nil {
		return p, err
	}
	p.Wants = make([]LongPtr, 0, n)
	for i := 0; i < n; i++ {
		lp, err := getLongPtr(d)
		if err != nil {
			return p, err
		}
		p.Wants = append(p.Wants, lp)
	}
	if p.Budget, err = d.Uint32(); err != nil {
		return p, err
	}
	if p.Primary, err = d.Uint32(); err != nil {
		return p, err
	}
	p.Speculative = p.Primary&FetchSpeculative != 0
	p.Primary &^= FetchSpeculative
	if int(p.Primary) > n {
		return p, fmt.Errorf("wire: primary count %d exceeds want count %d", p.Primary, n)
	}
	return p, nil
}

// ItemsPayload is the body of FetchReply and WriteBack messages.
type ItemsPayload struct {
	Items []DataItem
}

// Encode returns the canonical encoding of p.
func (p *ItemsPayload) Encode() []byte {
	e := xdr.NewEncoder(itemsEncodedSize(p.Items))
	putItems(e, p.Items)
	return e.Bytes()
}

// DecodeItemsPayload parses a FetchReply/WriteBack body.
func DecodeItemsPayload(b []byte) (ItemsPayload, error) {
	items, err := getItems(xdr.NewDecoder(b))
	return ItemsPayload{Items: items}, err
}

// Chunk flag bits (FetchChunkPayload.Flags on the wire).
const (
	// ChunkFinal marks the last chunk of a streamed reply.
	ChunkFinal uint32 = 1 << 0
	// ChunkValidate marks a chunk carrying validate-form items (a
	// streamed ValidateReply) instead of data items (a streamed
	// FetchReply).
	ChunkValidate uint32 = 1 << 1

	chunkFlagsMask = ChunkFinal | ChunkValidate
)

// fetchChunkHeaderSize is the fixed prefix of a chunk payload: the
// 64-bit exchange id, the chunk ordinal, and the flags word.
const fetchChunkHeaderSize = 8 + 4 + 4

// FetchChunkPayload is the body of one KindFetchChunk frame: a bounded
// slice of a streamed Fetch or Validate reply. XID echoes the request's
// Seq (a cross-check against mis-stitched streams), Chunk is the 0-based
// ordinal within the stream, and Final marks the last chunk. Exactly one
// of Items (fetch streams) and VItems (validate streams) is populated.
type FetchChunkPayload struct {
	XID      uint64
	Chunk    uint32
	Final    bool
	Validate bool
	Items    []DataItem
	VItems   []ValidateItem
}

func (p *FetchChunkPayload) flags() uint32 {
	var f uint32
	if p.Final {
		f |= ChunkFinal
	}
	if p.Validate {
		f |= ChunkValidate
	}
	return f
}

// EncodedSize returns the exact encoded size of p.
func (p *FetchChunkPayload) EncodedSize() int {
	if p.Validate {
		return fetchChunkHeaderSize + validateItemsEncodedSize(p.VItems)
	}
	return fetchChunkHeaderSize + itemsEncodedSize(p.Items)
}

// EncodeTo appends the canonical encoding of p to e (the streaming serve
// path encodes each chunk into a pooled buffer; see NewChunkBuf).
func (p *FetchChunkPayload) EncodeTo(e *xdr.Encoder) {
	e.PutUint64(p.XID)
	e.PutUint32(p.Chunk)
	e.PutUint32(p.flags())
	if p.Validate {
		putValidateItems(e, p.VItems)
	} else {
		putItems(e, p.Items)
	}
}

// Encode returns the canonical encoding of p.
func (p *FetchChunkPayload) Encode() []byte {
	e := xdr.NewEncoder(p.EncodedSize())
	p.EncodeTo(e)
	return e.Bytes()
}

// DecodeFetchChunkPayload parses a chunk body. Item bytes alias b (see
// getItems): the caller installs the chunk synchronously and releases
// the backing frame buffer afterwards.
func DecodeFetchChunkPayload(b []byte) (FetchChunkPayload, error) {
	d := xdr.NewDecoder(b)
	var p FetchChunkPayload
	var err error
	if p.XID, err = d.Uint64(); err != nil {
		return p, fmt.Errorf("wire: chunk xid: %w", err)
	}
	if p.Chunk, err = d.Uint32(); err != nil {
		return p, fmt.Errorf("wire: chunk ordinal: %w", err)
	}
	flags, err := d.Uint32()
	if err != nil {
		return p, fmt.Errorf("wire: chunk flags: %w", err)
	}
	if flags&^chunkFlagsMask != 0 {
		return p, fmt.Errorf("wire: unknown chunk flags %#x", flags)
	}
	p.Final = flags&ChunkFinal != 0
	p.Validate = flags&ChunkValidate != 0
	if p.Validate {
		p.VItems, err = getValidateItems(d)
	} else {
		p.Items, err = getItems(d)
	}
	return p, err
}

// ChunkIsFinal reports whether a chunk payload carries the final flag,
// reading only the fixed header. Malformed headers report true: the
// dispatcher uses this to decide whether a chunk ends its stream, and a
// frame that cannot even parse must close the exchange so the decode
// error surfaces to the waiter instead of stalling it.
func ChunkIsFinal(b []byte) bool {
	if len(b) < fetchChunkHeaderSize {
		return true
	}
	flags := uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15])
	return flags&^chunkFlagsMask != 0 || flags&ChunkFinal != 0
}

// AllocReq is one batched extended_malloc request. Token is the caller's
// provisional identifier for the new object; the reply maps it to the real
// address assigned by the origin space.
type AllocReq struct {
	Token uint64
	Type  types.ID
}

// AllocBatchPayload carries the batched remote allocation and release
// requests flushed when the thread of control leaves the space (§3.5).
type AllocBatchPayload struct {
	Allocs []AllocReq
	Frees  []LongPtr
}

// Encode returns the canonical encoding of p.
func (p *AllocBatchPayload) Encode() []byte {
	e := xdr.NewEncoder(16 + 12*len(p.Allocs) + EncodedLongPtrSize*len(p.Frees))
	e.PutUint32(uint32(len(p.Allocs)))
	for _, a := range p.Allocs {
		e.PutUint64(a.Token)
		e.PutUint32(uint32(a.Type))
	}
	e.PutUint32(uint32(len(p.Frees)))
	for _, lp := range p.Frees {
		putLongPtr(e, lp)
	}
	return e.Bytes()
}

// DecodeAllocBatchPayload parses an AllocBatch body.
func DecodeAllocBatchPayload(b []byte) (AllocBatchPayload, error) {
	d := xdr.NewDecoder(b)
	var p AllocBatchPayload
	nw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	n, err := boundCount(d, nw, 12, "alloc")
	if err != nil {
		return p, err
	}
	p.Allocs = make([]AllocReq, 0, n)
	for i := 0; i < n; i++ {
		var a AllocReq
		if a.Token, err = d.Uint64(); err != nil {
			return p, err
		}
		t, err := d.Uint32()
		if err != nil {
			return p, err
		}
		a.Type = types.ID(t)
		p.Allocs = append(p.Allocs, a)
	}
	mw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	m, err := boundCount(d, mw, EncodedLongPtrSize, "free")
	if err != nil {
		return p, err
	}
	p.Frees = make([]LongPtr, 0, m)
	for i := 0; i < m; i++ {
		lp, err := getLongPtr(d)
		if err != nil {
			return p, err
		}
		p.Frees = append(p.Frees, lp)
	}
	return p, nil
}

// Sum64 returns the FNV-1a 64-bit hash of b. The warm-cache revalidation
// protocol uses it as the content identity of a canonical encoding: the
// client offers the hash of its cached baseline and the origin compares it
// against the hash of the current encoding, so a "still current" token can
// never validate bytes that differ from the origin's — even after dropped
// replies have desynchronized the version counters.
func Sum64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Validate reply forms: how the origin answered one offered tuple.
const (
	// ValidateCurrent: the cached baseline matches the origin's current
	// encoding; the reply carries no bytes and the client promotes its
	// stale copy in place.
	ValidateCurrent uint32 = 1
	// ValidateDelta: Bytes is an encoded run vector (internal/delta) to be
	// patched onto the client's cached baseline.
	ValidateDelta uint32 = 2
	// ValidateFull: Bytes is the object's full canonical encoding; the
	// cached copy was unusable as a delta base.
	ValidateFull uint32 = 3
)

// ValidateTuple offers one stale cached datum for revalidation: its wire
// identity, the crossing version the cache recorded (diagnostic — the
// content hash is authoritative), and the FNV-1a 64 hash of the cached
// canonical encoding.
type ValidateTuple struct {
	LP  LongPtr
	Ver uint32
	Sum uint64
}

// encodedValidateTupleSize is the exact encoding of one tuple: long
// pointer, version word, and the two hash words.
const encodedValidateTupleSize = EncodedLongPtrSize + 4 + 8

// ValidatePayload is the body of a Validate message: the batched set of
// stale tuples the faulting client wants revalidated in one round-trip —
// the faulting page's entries plus the stale ride-alongs in its closure
// neighborhood.
type ValidatePayload struct {
	Tuples []ValidateTuple
}

// Encode returns the canonical encoding of p.
func (p *ValidatePayload) Encode() []byte {
	e := xdr.NewEncoder(4 + encodedValidateTupleSize*len(p.Tuples))
	e.PutUint32(uint32(len(p.Tuples)))
	for _, t := range p.Tuples {
		putLongPtr(e, t.LP)
		e.PutUint32(t.Ver)
		e.PutUint64(t.Sum)
	}
	return e.Bytes()
}

// DecodeValidatePayload parses a Validate body.
func DecodeValidatePayload(b []byte) (ValidatePayload, error) {
	d := xdr.NewDecoder(b)
	var p ValidatePayload
	nw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	n, err := boundCount(d, nw, encodedValidateTupleSize, "validate tuple")
	if err != nil {
		return p, err
	}
	p.Tuples = make([]ValidateTuple, 0, n)
	for i := 0; i < n; i++ {
		var t ValidateTuple
		if t.LP, err = getLongPtr(d); err != nil {
			return p, err
		}
		if t.Ver, err = d.Uint32(); err != nil {
			return p, err
		}
		if t.Sum, err = d.Uint64(); err != nil {
			return p, err
		}
		p.Tuples = append(p.Tuples, t)
	}
	return p, nil
}

// ValidateItem is the origin's answer for one offered tuple. Form selects
// among the three reply forms; Bytes is empty for ValidateCurrent, an
// encoded run vector for ValidateDelta, and the full canonical encoding
// for ValidateFull.
type ValidateItem struct {
	LP    LongPtr
	Form  uint32
	Bytes []byte
}

// ValidateReplyPayload is the body of a ValidateReply message, parallel to
// the request's tuple vector (the origin answers every offered tuple).
type ValidateReplyPayload struct {
	Items []ValidateItem
}

// validateItemsEncodedSize returns the exact encoded size of a
// validate-item vector.
func validateItemsEncodedSize(items []ValidateItem) int {
	n := 4
	for _, it := range items {
		n += EncodedLongPtrSize + 4 + 4 + (len(it.Bytes)+3)&^3
	}
	return n
}

func putValidateItems(e *xdr.Encoder, items []ValidateItem) {
	e.PutUint32(uint32(len(items)))
	for _, it := range items {
		putLongPtr(e, it.LP)
		e.PutUint32(it.Form)
		e.PutOpaque(it.Bytes)
	}
}

// getValidateItems decodes a validate-item vector; item bytes alias the
// decoder's buffer (see getItems).
func getValidateItems(d *xdr.Decoder) ([]ValidateItem, error) {
	nw, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	n, err := boundCount(d, nw, EncodedLongPtrSize+4+4, "validate item")
	if err != nil {
		return nil, err
	}
	items := make([]ValidateItem, 0, n)
	for i := 0; i < n; i++ {
		var it ValidateItem
		if it.LP, err = getLongPtr(d); err != nil {
			return nil, err
		}
		if it.Form, err = d.Uint32(); err != nil {
			return nil, err
		}
		if it.Form < ValidateCurrent || it.Form > ValidateFull {
			return nil, fmt.Errorf("wire: unknown validate form %d", it.Form)
		}
		if it.Bytes, err = d.Opaque(); err != nil {
			return nil, err
		}
		if it.Form == ValidateCurrent && len(it.Bytes) != 0 {
			return nil, fmt.Errorf("wire: validate current item carries %d bytes", len(it.Bytes))
		}
		items = append(items, it)
	}
	return items, nil
}

// Encode returns the canonical encoding of p.
func (p *ValidateReplyPayload) Encode() []byte {
	e := xdr.NewEncoder(validateItemsEncodedSize(p.Items))
	putValidateItems(e, p.Items)
	return e.Bytes()
}

// DecodeValidateReplyPayload parses a ValidateReply body. Item bytes alias
// the decoder's buffer (see getItems); a caller retaining them past the
// frame's lifetime must copy.
func DecodeValidateReplyPayload(b []byte) (ValidateReplyPayload, error) {
	items, err := getValidateItems(xdr.NewDecoder(b))
	return ValidateReplyPayload{Items: items}, err
}

// AllocReplyPayload returns the real addresses for a batch of allocation
// requests, parallel to AllocBatchPayload.Allocs.
type AllocReplyPayload struct {
	Addrs []vmem.VAddr
}

// Encode returns the canonical encoding of p.
func (p *AllocReplyPayload) Encode() []byte {
	e := xdr.NewEncoder(4 + 4*len(p.Addrs))
	e.PutUint32(uint32(len(p.Addrs)))
	for _, a := range p.Addrs {
		e.PutUint32(uint32(a))
	}
	return e.Bytes()
}

// DecodeAllocReplyPayload parses an AllocReply body.
func DecodeAllocReplyPayload(b []byte) (AllocReplyPayload, error) {
	d := xdr.NewDecoder(b)
	var p AllocReplyPayload
	nw, err := d.Uint32()
	if err != nil {
		return p, err
	}
	n, err := boundCount(d, nw, 4, "addr")
	if err != nil {
		return p, err
	}
	p.Addrs = make([]vmem.VAddr, 0, n)
	for i := 0; i < n; i++ {
		a, err := d.Uint32()
		if err != nil {
			return p, err
		}
		p.Addrs = append(p.Addrs, vmem.VAddr(a))
	}
	return p, nil
}

package idl

import (
	"bytes"
	"errors"
	"fmt"
	goparser "go/parser"
	gotoken "go/token"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"smartrpc/internal/types"
)

const sampleIDL = `
// The paper's tree workload.
type TreeNode struct {
    left  *TreeNode
    right *TreeNode
    data  int64
}

type Blob struct {
    tag  uint32
    pay  [8]uint8
    next *Blob
    refs [2]*TreeNode
    w    float64
    flag bool
}

interface TreeService {
    search(root *TreeNode, budget int64) (visited int64, sum int64)
    touch(root *TreeNode) ()
    describe(x float64, ok bool, n uint64) (out float64)
}
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Types) != 2 || len(f.Interfaces) != 1 {
		t.Fatalf("parsed %d types, %d interfaces", len(f.Types), len(f.Interfaces))
	}
	tree := f.Types[0]
	if tree.Name != "TreeNode" || tree.ID != 1 {
		t.Errorf("first type = %q id %d", tree.Name, tree.ID)
	}
	if tree.Fields[0].Kind != types.Ptr || tree.Fields[0].Elem != "TreeNode" {
		t.Errorf("left field = %+v", tree.Fields[0])
	}
	blob := f.Types[1]
	if blob.Fields[1].Count != 8 || blob.Fields[1].Kind != types.Uint8 {
		t.Errorf("pay field = %+v", blob.Fields[1])
	}
	if blob.Fields[3].Count != 2 || blob.Fields[3].Kind != types.Ptr {
		t.Errorf("refs field = %+v", blob.Fields[3])
	}
	svc := f.Interfaces[0]
	if len(svc.Methods) != 3 {
		t.Fatalf("methods = %d", len(svc.Methods))
	}
	search := svc.Methods[0]
	if len(search.Params) != 2 || len(search.Results) != 2 {
		t.Errorf("search signature = %+v", search)
	}
	if svc.Methods[1].Results != nil && len(svc.Methods[1].Results) != 0 {
		t.Errorf("touch should have no results: %+v", svc.Methods[1].Results)
	}
}

func TestDescriptors(t *testing.T) {
	f, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := f.Descriptors()
	if err != nil {
		t.Fatal(err)
	}
	reg := types.NewRegistry()
	for _, d := range descs {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := reg.LookupName("TreeNode")
	if err != nil || d.ID != 1 {
		t.Errorf("TreeNode = %+v, %v", d, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"garbage", "what is this", "expected 'type' or 'interface'"},
		{"unknown scalar", "type T struct { x int27 }", "unknown scalar"},
		{"dangling pointer", "type T struct { p *Missing }", "unknown type"},
		{"empty struct", "type T struct { }", "no fields"},
		{"dup type", "type T struct { x int64 }\ntype T struct { x int64 }", "duplicate type"},
		{"dup field", "type T struct { x int64 x int32 }", "duplicate field"},
		{"empty iface", "interface I { }", "no methods"},
		{"dup method", "type T struct { x int64 }\ninterface I { m(p *T) () m(p *T) () }", "duplicate method"},
		{"bad method scalar", "interface I { m(x int8) () }", "method scalars"},
		{"unknown pointee", "interface I { m(x *Nope) () }", "unknown pointee"},
		{"bad array len", "type T struct { x [0]int64 }", "bad array length"},
		{"bad char", "type T struct { x int64 } $", "unexpected character"},
		{"missing brace", "type T struct { x int64", "expected"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%s: parse succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Parse("type T struct {\n  x int64\n  y nosuch\n}")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T %v", err, err)
	}
	if serr.Line != 3 {
		t.Errorf("line = %d, want 3", serr.Line)
	}
}

func TestGenerateParsesAsGo(t *testing.T) {
	f, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "stubs")
	if err != nil {
		t.Fatal(err)
	}
	fset := gotoken.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", code, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, code)
	}
	for _, want := range []string{
		"func RegisterTypes(reg *srpc.Registry) error",
		"type TreeNodeRef struct",
		"func DerefTreeNode(rt *srpc.Runtime, v srpc.Value) (TreeNodeRef, error)",
		"func (r TreeNodeRef) Left() (srpc.Value, error)",
		"func (r TreeNodeRef) SetData(v int64) error",
		"func (r BlobRef) Pay(i int) (uint8, error)",
		"func (r BlobRef) Refs(i int) (srpc.Value, error)",
		"type TreeServiceClient struct",
		"func (c TreeServiceClient) Search(root srpc.Value, budget int64) (visited int64, sum int64, err error)",
		"type TreeServiceServer interface",
		"func RegisterTreeServiceServer(rt *srpc.Runtime, impl TreeServiceServer) error",
		`"TreeService.search"`,
	} {
		if !strings.Contains(string(code), want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateComments(t *testing.T) {
	f, err := Parse("type N struct { v int64 }")
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(code), "// Code generated by srpcgen. DO NOT EDIT.") {
		t.Error("missing generated-code header")
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := "// leading\n\ntype   A\tstruct {\n// inner comment\n x int64 // trailing\n}\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Types) != 1 || f.Types[0].Name != "A" {
		t.Errorf("parsed %+v", f.Types)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
type A struct { b *B }
type B struct { a *A }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := f.Descriptors()
	if err != nil {
		t.Fatal(err)
	}
	if descs[0].Fields[0].Elem != 2 || descs[1].Fields[0].Elem != 1 {
		t.Errorf("mutual recursion IDs wrong: %+v %+v", descs[0], descs[1])
	}
}

// TestGentreeStubsInSync regenerates the stubs for the committed example
// IDL and verifies the checked-in file matches (golden test): if the
// generator changes, `go run ./cmd/srpcgen -in examples/gentree/tree.idl
// -pkg treegen -out examples/gentree/treegen/gen.go` must be re-run.
func TestGentreeStubsInSync(t *testing.T) {
	src, err := os.ReadFile("../../examples/gentree/tree.idl")
	if err != nil {
		t.Skipf("example IDL not found: %v", err)
	}
	f, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(f, "treegen")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../../examples/gentree/treegen/gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("examples/gentree/treegen/gen.go is stale; re-run srpcgen")
	}
}

// Property: arbitrary schemas drawn from a small grammar parse, convert
// to descriptors, and generate syntactically valid Go.
func TestQuickGenerateValidGo(t *testing.T) {
	kinds := []string{"int8", "uint8", "int16", "uint16", "int32", "uint32",
		"int64", "uint64", "float32", "float64", "bool"}
	f := func(shape []uint8) bool {
		if len(shape) == 0 {
			return true
		}
		var sb strings.Builder
		nTypes := int(shape[0])%3 + 1
		for ti := 0; ti < nTypes; ti++ {
			fmt.Fprintf(&sb, "type T%d struct {\n", ti)
			nFields := 1
			if len(shape) > ti+1 {
				nFields = int(shape[ti+1])%4 + 1
			}
			for fi := 0; fi < nFields; fi++ {
				sel := 0
				if len(shape) > ti+fi+2 {
					sel = int(shape[ti+fi+2])
				}
				if sel%5 == 0 {
					fmt.Fprintf(&sb, "  p%d *T%d\n", fi, sel%nTypes)
				} else if sel%7 == 1 {
					fmt.Fprintf(&sb, "  a%d [%d]%s\n", fi, sel%6+1, kinds[sel%len(kinds)])
				} else {
					fmt.Fprintf(&sb, "  f%d %s\n", fi, kinds[sel%len(kinds)])
				}
			}
			fmt.Fprintf(&sb, "}\n")
		}
		sb.WriteString("interface Svc { run(x int64, p *T0) (y int64) }\n")
		file, err := Parse(sb.String())
		if err != nil {
			return false
		}
		if _, err := file.Descriptors(); err != nil {
			return false
		}
		code, err := Generate(file, "p")
		if err != nil {
			return false
		}
		fset := gotoken.NewFileSet()
		_, err = goparser.ParseFile(fset, "g.go", code, 0)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDocCommentsFlowIntoGeneratedCode(t *testing.T) {
	src := `
// A TreeNode is one element of the search tree.
// Sixteen bytes on the paper's SPARC.
type TreeNode struct { data int64 }

// TreeService searches trees.
interface TreeService {
    // search walks the tree depth-first.
    search(budget int64) (visited int64)
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Types[0].Doc != "A TreeNode is one element of the search tree.\nSixteen bytes on the paper's SPARC." {
		t.Errorf("type doc = %q", f.Types[0].Doc)
	}
	if f.Interfaces[0].Doc != "TreeService searches trees." {
		t.Errorf("interface doc = %q", f.Interfaces[0].Doc)
	}
	if f.Interfaces[0].Methods[0].Doc != "search walks the tree depth-first." {
		t.Errorf("method doc = %q", f.Interfaces[0].Methods[0].Doc)
	}
	code, err := Generate(f, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"// A TreeNode is one element of the search tree.\n// Sixteen bytes on the paper's SPARC.\ntype TreeNodeRef struct",
		"// TreeService searches trees.\ntype TreeServiceClient struct",
		"// search walks the tree depth-first.\nfunc (c TreeServiceClient) Search",
	} {
		if !strings.Contains(string(code), want) {
			t.Errorf("generated code missing doc block %q", want)
		}
	}
}

func TestDetachedCommentNotADoc(t *testing.T) {
	src := "// floating remark\n\ntype T struct { x int64 }"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Types[0].Doc != "" {
		t.Errorf("detached comment attached as doc: %q", f.Types[0].Doc)
	}
}

// Package idl implements the interface definition language of the stub
// generator (cmd/srpcgen).
//
// The paper's system, like every RPC system of its generation, relies on
// generated stubs: the programmer declares data types and remote
// interfaces, and the generator emits the code that unswizzles pointers
// on the caller side, swizzles them on the callee side, and converts
// representations. The IDL here is deliberately small:
//
//	// a comment
//	type TreeNode struct {
//	    left  *TreeNode
//	    right *TreeNode
//	    data  int64
//	    pad   [4]uint8
//	}
//
//	interface TreeService {
//	    search(root *TreeNode, budget int64) (visited int64, sum int64)
//	    touch(root *TreeNode) ()
//	}
//
// Struct fields may be scalars, fixed-size arrays of scalars, or pointers
// to declared types. Method parameters and results are scalars (int64,
// uint64, float64, bool) or pointers. Type IDs are assigned in
// declaration order starting at 1.
package idl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"smartrpc/internal/types"
)

// File is a parsed IDL file.
type File struct {
	// Types lists struct declarations in order.
	Types []*TypeDecl
	// Interfaces lists interface declarations in order.
	Interfaces []*InterfaceDecl
}

// TypeDecl is one struct declaration.
type TypeDecl struct {
	Name   string
	ID     types.ID
	Doc    string // comment block directly above the declaration
	Fields []FieldDecl
}

// FieldDecl is one struct member.
type FieldDecl struct {
	Name  string
	Kind  types.Kind
	Elem  string // pointee type name for pointers
	Count int    // fixed array length; 0 = scalar
}

// InterfaceDecl is one remote interface.
type InterfaceDecl struct {
	Name    string
	Doc     string // comment block directly above the declaration
	Methods []MethodDecl
}

// MethodDecl is one remote procedure.
type MethodDecl struct {
	Name    string
	Doc     string // comment block directly above the declaration
	Params  []ParamDecl
	Results []ParamDecl
}

// ParamDecl is one parameter or result.
type ParamDecl struct {
	Name string
	Kind types.Kind
	Elem string // pointee type name for pointers
}

var scalarKinds = map[string]types.Kind{
	"int8": types.Int8, "uint8": types.Uint8,
	"int16": types.Int16, "uint16": types.Uint16,
	"int32": types.Int32, "uint32": types.Uint32,
	"int64": types.Int64, "uint64": types.Uint64,
	"float32": types.Float32, "float64": types.Float64,
	"bool": types.Bool,
}

var methodScalarKinds = map[types.Kind]bool{
	types.Int64: true, types.Uint64: true, types.Float64: true, types.Bool: true,
}

// SyntaxError reports a parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error renders the failure.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("idl: line %d: %s", e.Line, e.Msg)
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokPunct // one of * ( ) { } [ ] ,
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	// pendingDoc accumulates // comment lines immediately preceding the
	// next token; a blank line clears it (Go doc-comment convention).
	pendingDoc []string
	lastLine   int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// takeDoc consumes the doc-comment block accumulated before the current
// token, if it ended on the line directly above.
func (l *lexer) takeDoc(declLine int) string {
	if len(l.pendingDoc) == 0 {
		return ""
	}
	if l.lastLine+len(l.pendingDoc) != declLine {
		l.pendingDoc = nil
		return ""
	}
	doc := strings.Join(l.pendingDoc, "\n")
	l.pendingDoc = nil
	return doc
}

func (l *lexer) errf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			// A blank line between a comment block and the next token
			// detaches the block (it is not a doc comment). The block
			// occupies lines [lastLine, lastLine+len); a newline seen on
			// any later line is a blank separator.
			if len(l.pendingDoc) > 0 && l.line >= l.lastLine+len(l.pendingDoc) {
				l.pendingDoc = nil
			}
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			start := l.pos + 2
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			if len(l.pendingDoc) == 0 {
				l.lastLine = l.line
			}
			l.pendingDoc = append(l.pendingDoc, strings.TrimSpace(l.src[start:l.pos]))
		case strings.ContainsRune("*(){}[],", rune(c)):
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
			return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) {
				r := rune(l.src[l.pos])
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
					break
				}
				l.pos++
			}
			return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
		default:
			return token{}, l.errf("unexpected character %q", c)
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

// --- parser ---

type parser struct {
	lex  *lexer
	tok  token
	file *File
}

// Parse parses IDL source.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src), file: &File{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		switch {
		case p.tok.kind == tokIdent && p.tok.text == "type":
			if err := p.parseType(); err != nil {
				return nil, err
			}
		case p.tok.kind == tokIdent && p.tok.text == "interface":
			if err := p.parseInterface(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected 'type' or 'interface', got %q", p.tok.text)
		}
	}
	if err := p.file.validate(); err != nil {
		return nil, err
	}
	return p.file, nil
}

func (p *parser) errf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseType() error {
	doc := p.lex.takeDoc(p.tok.line)
	if err := p.advance(); err != nil { // consume 'type'
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	kw, err := p.expectIdent()
	if err != nil {
		return err
	}
	if kw != "struct" {
		return p.errf("expected 'struct' after type name, got %q", kw)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	decl := &TypeDecl{Name: name, ID: types.ID(len(p.file.Types) + 1), Doc: doc}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		f, err := p.parseField()
		if err != nil {
			return err
		}
		decl.Fields = append(decl.Fields, f)
	}
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	p.file.Types = append(p.file.Types, decl)
	return nil
}

func (p *parser) parseField() (FieldDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return FieldDecl{}, err
	}
	f := FieldDecl{Name: name}
	// Optional fixed array prefix: [N]
	if p.tok.kind == tokPunct && p.tok.text == "[" {
		if err := p.advance(); err != nil {
			return FieldDecl{}, err
		}
		if p.tok.kind != tokNumber {
			return FieldDecl{}, p.errf("expected array length, got %q", p.tok.text)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n <= 0 {
			return FieldDecl{}, p.errf("bad array length %q", p.tok.text)
		}
		f.Count = n
		if err := p.advance(); err != nil {
			return FieldDecl{}, err
		}
		if err := p.expectPunct("]"); err != nil {
			return FieldDecl{}, err
		}
	}
	kind, elem, err := p.parseValueType()
	if err != nil {
		return FieldDecl{}, err
	}
	f.Kind = kind
	f.Elem = elem
	return f, nil
}

// parseValueType parses a scalar name or "*Type".
func (p *parser) parseValueType() (types.Kind, string, error) {
	if p.tok.kind == tokPunct && p.tok.text == "*" {
		if err := p.advance(); err != nil {
			return 0, "", err
		}
		elem, err := p.expectIdent()
		if err != nil {
			return 0, "", err
		}
		return types.Ptr, elem, nil
	}
	if p.tok.kind != tokIdent {
		return 0, "", p.errf("expected type, got %q", p.tok.text)
	}
	k, ok := scalarKinds[p.tok.text]
	if !ok {
		return 0, "", p.errf("unknown scalar type %q (pointers are written *Name)", p.tok.text)
	}
	return k, "", p.advance()
}

func (p *parser) parseInterface() error {
	doc := p.lex.takeDoc(p.tok.line)
	if err := p.advance(); err != nil { // consume 'interface'
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	decl := &InterfaceDecl{Name: name, Doc: doc}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		m, err := p.parseMethod()
		if err != nil {
			return err
		}
		decl.Methods = append(decl.Methods, m)
	}
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	p.file.Interfaces = append(p.file.Interfaces, decl)
	return nil
}

func (p *parser) parseMethod() (MethodDecl, error) {
	doc := p.lex.takeDoc(p.tok.line)
	name, err := p.expectIdent()
	if err != nil {
		return MethodDecl{}, err
	}
	m := MethodDecl{Name: name, Doc: doc}
	if m.Params, err = p.parseParamList(); err != nil {
		return MethodDecl{}, err
	}
	if p.tok.kind == tokPunct && p.tok.text == "(" {
		if m.Results, err = p.parseParamList(); err != nil {
			return MethodDecl{}, err
		}
	}
	return m, nil
}

func (p *parser) parseParamList() ([]ParamDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []ParamDecl
	for !(p.tok.kind == tokPunct && p.tok.text == ")") {
		if len(out) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, elem, err := p.parseValueType()
		if err != nil {
			return nil, err
		}
		out = append(out, ParamDecl{Name: name, Kind: kind, Elem: elem})
	}
	return out, p.expectPunct(")")
}

// --- semantic checks and conversion ---

func (f *File) validate() error {
	typeByName := make(map[string]*TypeDecl, len(f.Types))
	for _, t := range f.Types {
		if _, dup := typeByName[t.Name]; dup {
			return fmt.Errorf("idl: duplicate type %q", t.Name)
		}
		typeByName[t.Name] = t
		if len(t.Fields) == 0 {
			return fmt.Errorf("idl: type %q has no fields", t.Name)
		}
		seen := make(map[string]bool, len(t.Fields))
		for _, fd := range t.Fields {
			if seen[fd.Name] {
				return fmt.Errorf("idl: type %q: duplicate field %q", t.Name, fd.Name)
			}
			seen[fd.Name] = true
		}
	}
	for _, t := range f.Types {
		for _, fd := range t.Fields {
			if fd.Kind == types.Ptr {
				if _, ok := typeByName[fd.Elem]; !ok {
					return fmt.Errorf("idl: type %q field %q points to unknown type %q", t.Name, fd.Name, fd.Elem)
				}
				if fd.Count > 0 {
					// Pointer arrays are legal in the descriptor model;
					// allow them.
					continue
				}
			}
		}
	}
	ifaceByName := make(map[string]bool, len(f.Interfaces))
	for _, i := range f.Interfaces {
		if ifaceByName[i.Name] {
			return fmt.Errorf("idl: duplicate interface %q", i.Name)
		}
		ifaceByName[i.Name] = true
		if len(i.Methods) == 0 {
			return fmt.Errorf("idl: interface %q has no methods", i.Name)
		}
		mseen := make(map[string]bool, len(i.Methods))
		for _, m := range i.Methods {
			if mseen[m.Name] {
				return fmt.Errorf("idl: interface %q: duplicate method %q", i.Name, m.Name)
			}
			mseen[m.Name] = true
			for _, p := range append(append([]ParamDecl(nil), m.Params...), m.Results...) {
				if p.Kind == types.Ptr {
					if _, ok := typeByName[p.Elem]; !ok {
						return fmt.Errorf("idl: %s.%s: unknown pointee %q", i.Name, m.Name, p.Elem)
					}
					continue
				}
				if !methodScalarKinds[p.Kind] {
					return fmt.Errorf("idl: %s.%s: parameter %q: method scalars are int64, uint64, float64, bool",
						i.Name, m.Name, p.Name)
				}
			}
		}
	}
	return nil
}

// TypeID returns the declared ID of a named type (0 if absent).
func (f *File) TypeID(name string) types.ID {
	for _, t := range f.Types {
		if t.Name == name {
			return t.ID
		}
	}
	return 0
}

// Descriptors converts the parsed types into registry descriptors.
func (f *File) Descriptors() ([]*types.Desc, error) {
	out := make([]*types.Desc, 0, len(f.Types))
	for _, t := range f.Types {
		d := &types.Desc{ID: t.ID, Name: t.Name}
		for _, fd := range t.Fields {
			fld := types.Field{Name: fd.Name, Kind: fd.Kind, Count: fd.Count}
			if fd.Kind == types.Ptr {
				fld.Elem = f.TypeID(fd.Elem)
			}
			d.Fields = append(d.Fields, fld)
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

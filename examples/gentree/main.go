// Gentree demonstrates the stub-generator workflow: the types and the
// remote interface are declared in tree.idl, srpcgen emits the stubs in
// ./treegen, and this program uses only the generated, fully typed API —
// no srpc.Value juggling, exactly the programming model the paper's stub
// generator provides.
//
// Regenerate the stubs with:
//
//	go run ./cmd/srpcgen -in examples/gentree/tree.idl -pkg treegen -out examples/gentree/treegen/gen.go
//
// Run with: go run ./examples/gentree
package main

import (
	"fmt"
	"log"

	srpc "smartrpc"
	"smartrpc/examples/gentree/treegen"
)

// treeServer implements treegen.TreeServiceServer.
type treeServer struct {
	rt *srpc.Runtime
}

var _ treegen.TreeServiceServer = (*treeServer)(nil)

// Search walks the tree depth-first up to budget nodes.
func (s *treeServer) Search(ctx *srpc.Ctx, root srpc.Value, budget int64) (int64, int64, error) {
	var visited, sum int64
	var walk func(v srpc.Value) error
	walk = func(v srpc.Value) error {
		if v.IsNullPtr() || visited >= budget {
			return nil
		}
		node, err := treegen.DerefTreeNode(s.rt, v)
		if err != nil {
			return err
		}
		visited++
		d, err := node.Data()
		if err != nil {
			return err
		}
		sum += d
		l, err := node.Left()
		if err != nil {
			return err
		}
		if err := walk(l); err != nil {
			return err
		}
		r, err := node.Right()
		if err != nil {
			return err
		}
		return walk(r)
	}
	if err := walk(root); err != nil {
		return 0, 0, err
	}
	return visited, sum, nil
}

// Deepen allocates a new child in the CALLER's space (extended_malloc via
// the runtime), attaches it under node.left, and returns it.
func (s *treeServer) Deepen(ctx *srpc.Ctx, node srpc.Value, label int64) (srpc.Value, error) {
	child, err := s.rt.ExtendedMalloc(ctx.Caller(), treegen.TreeNodeType)
	if err != nil {
		return srpc.Value{}, err
	}
	childRef, err := treegen.DerefTreeNode(s.rt, child)
	if err != nil {
		return srpc.Value{}, err
	}
	if err := childRef.SetData(label); err != nil {
		return srpc.Value{}, err
	}
	parent, err := treegen.DerefTreeNode(s.rt, node)
	if err != nil {
		return srpc.Value{}, err
	}
	if err := parent.SetLeft(child); err != nil {
		return srpc.Value{}, err
	}
	return child, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := srpc.NewRegistry()
	if err := treegen.RegisterTypes(reg); err != nil {
		return err
	}
	net, err := srpc.NewLocalNetwork(srpc.Ethernet10SPARC())
	if err != nil {
		return err
	}
	defer net.Close()
	cn, err := net.Attach(1)
	if err != nil {
		return err
	}
	sn, err := net.Attach(2)
	if err != nil {
		return err
	}
	client, err := srpc.New(srpc.Options{ID: 1, Node: cn, Registry: reg})
	if err != nil {
		return err
	}
	defer client.Close()
	server, err := srpc.New(srpc.Options{ID: 2, Node: sn, Registry: reg})
	if err != nil {
		return err
	}
	defer server.Close()
	if err := treegen.RegisterTreeServiceServer(server, &treeServer{rt: server}); err != nil {
		return err
	}

	// Build a 3-node tree in the client space through the generated
	// typed wrappers.
	root, err := treegen.NewTreeNode(client)
	if err != nil {
		return err
	}
	rootRef, err := treegen.DerefTreeNode(client, root)
	if err != nil {
		return err
	}
	if err := rootRef.SetData(10); err != nil {
		return err
	}
	for i, label := range []int64{20, 30} {
		v, err := treegen.NewTreeNode(client)
		if err != nil {
			return err
		}
		ref, err := treegen.DerefTreeNode(client, v)
		if err != nil {
			return err
		}
		if err := ref.SetData(label); err != nil {
			return err
		}
		if i == 0 {
			err = rootRef.SetLeft(v)
		} else {
			err = rootRef.SetRight(v)
		}
		if err != nil {
			return err
		}
	}

	if err := client.BeginSession(); err != nil {
		return err
	}
	svc := treegen.TreeServiceClient{RT: client, Target: 2}
	visited, sum, err := svc.Search(root, 100)
	if err != nil {
		return err
	}
	fmt.Printf("generated stub search: visited=%d sum=%d (want 3, 60)\n", visited, sum)

	// Ask the server to grow the tree: the new node lands in OUR heap.
	left, err := rootRef.Left()
	if err != nil {
		return err
	}
	if _, err := svc.Deepen(left, 40); err != nil {
		return err
	}
	visited, sum, err = svc.Search(root, 100)
	if err != nil {
		return err
	}
	fmt.Printf("after remote Deepen:  visited=%d sum=%d (want 4, 100)\n", visited, sum)
	if err := client.EndSession(); err != nil {
		return err
	}
	return nil
}

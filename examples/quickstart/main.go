// Quickstart: pass a pointer to a remote procedure and dereference it
// there as if it were local.
//
// A "client" space builds a linked list in its heap and passes a pointer
// to the head to a "server" space. The server walks the list through the
// Ref API: the first touch of each page of remote data faults, the
// runtime fetches it (with an eager closure), and every later access is
// local. No marshaling code is written by hand and the server never sees
// an address it could not dereference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	srpc "smartrpc"
)

const nodeType srpc.TypeID = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The type database: a singly linked list node.
	reg := srpc.NewRegistry()
	reg.MustRegister(&srpc.TypeDesc{
		ID:   nodeType,
		Name: "Node",
		Fields: []srpc.Field{
			{Name: "next", Kind: srpc.KindPtr, Elem: nodeType},
			{Name: "val", Kind: srpc.KindInt64},
		},
	})
	if err := reg.Validate(); err != nil {
		return err
	}

	// 2. Two address spaces on an in-process network with the paper's
	// 10 Mbps Ethernet cost model.
	net, err := srpc.NewLocalNetwork(srpc.Ethernet10SPARC())
	if err != nil {
		return err
	}
	defer net.Close()
	clientNode, err := net.Attach(1)
	if err != nil {
		return err
	}
	serverNode, err := net.Attach(2)
	if err != nil {
		return err
	}
	client, err := srpc.New(srpc.Options{ID: 1, Node: clientNode, Registry: reg})
	if err != nil {
		return err
	}
	defer client.Close()
	server, err := srpc.New(srpc.Options{ID: 2, Node: serverNode, Registry: reg})
	if err != nil {
		return err
	}
	defer server.Close()

	// 3. The remote procedure: sums a list it receives BY POINTER.
	err = server.Register("sum", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		total := int64(0)
		v := args[0]
		for !v.IsNullPtr() {
			ref, err := ctx.Runtime().Deref(v) // remote pointer, local syntax
			if err != nil {
				return nil, err
			}
			n, err := ref.Int("val", 0)
			if err != nil {
				return nil, err
			}
			total += n
			if v, err = ref.Ptr("next", 0); err != nil {
				return nil, err
			}
		}
		return []srpc.Value{srpc.Int64Value(total)}, nil
	})
	if err != nil {
		return err
	}

	// 4. Build the list locally in the client's heap.
	const n = 1000
	head := srpc.NullPtr(nodeType)
	for i := n; i >= 1; i-- {
		v, err := client.NewObject(nodeType)
		if err != nil {
			return err
		}
		ref, err := client.Deref(v)
		if err != nil {
			return err
		}
		if err := ref.SetInt("val", 0, int64(i)); err != nil {
			return err
		}
		if err := ref.SetPtr("next", 0, head); err != nil {
			return err
		}
		head = v
	}

	// 5. Call the remote procedure with the pointer argument.
	if err := client.BeginSession(); err != nil {
		return err
	}
	res, err := client.Call(2, "sum", []srpc.Value{head})
	if err != nil {
		return err
	}
	if err := client.EndSession(); err != nil {
		return err
	}

	fmt.Printf("remote sum of 1..%d = %d (want %d)\n", n, res[0].Int64(), n*(n+1)/2)
	st := server.Stats()
	fmt.Printf("server faults: %d, fetch messages: %d, objects cached: %d\n",
		st.Faults, st.FetchesSent, st.ItemsInstalled)
	fmt.Printf("network: %d messages, %d bytes, modeled time %v\n",
		net.Stats().Messages(), net.Stats().Bytes(), net.Clock().Now())
	return nil
}

// Funcptr demonstrates remote function pointers — the limitation §6 of
// the paper leaves open ("the method does not support a remote pointer to
// a function") and this reproduction implements as an extension.
//
// The client passes BOTH a data pointer (a linked list in its own heap)
// and a function pointer (a procedure registered on the client) to a
// remote "map" service. The mapper walks the remote list and invokes the
// function pointer for every element; each invocation is a callback into
// the client, dispatched wherever the function lives.
//
// Run with: go run ./examples/funcptr
package main

import (
	"fmt"
	"log"

	srpc "smartrpc"
)

const cellType srpc.TypeID = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := srpc.NewRegistry()
	reg.MustRegister(&srpc.TypeDesc{
		ID:   cellType,
		Name: "Cell",
		Fields: []srpc.Field{
			{Name: "next", Kind: srpc.KindPtr, Elem: cellType},
			{Name: "val", Kind: srpc.KindInt64},
		},
	})
	if err := reg.Validate(); err != nil {
		return err
	}
	net, err := srpc.NewLocalNetwork(srpc.Ethernet10SPARC())
	if err != nil {
		return err
	}
	defer net.Close()
	cn, err := net.Attach(1)
	if err != nil {
		return err
	}
	mn, err := net.Attach(2)
	if err != nil {
		return err
	}
	client, err := srpc.New(srpc.Options{ID: 1, Node: cn, Registry: reg})
	if err != nil {
		return err
	}
	defer client.Close()
	mapper, err := srpc.New(srpc.Options{ID: 2, Node: mn, Registry: reg})
	if err != nil {
		return err
	}
	defer mapper.Close()

	// The client-side function the mapper will call back through a
	// function pointer. It closes over client-local state (a counter),
	// which no amount of data shipping could reproduce remotely.
	calls := 0
	err = client.Register("scale", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		calls++
		return []srpc.Value{srpc.Int64Value(args[0].Int64() * 10)}, nil
	})
	if err != nil {
		return err
	}

	// The mapper applies fn to every element of the list, in place.
	err = mapper.Register("mapList", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		rt := ctx.Runtime()
		fn, v := args[0], args[1]
		for !v.IsNullPtr() {
			ref, err := rt.Deref(v)
			if err != nil {
				return nil, err
			}
			x, err := ref.Int("val", 0)
			if err != nil {
				return nil, err
			}
			out, err := rt.CallFunc(fn, []srpc.Value{srpc.Int64Value(x)})
			if err != nil {
				return nil, err
			}
			if err := ref.SetInt("val", 0, out[0].Int64()); err != nil {
				return nil, err
			}
			if v, err = ref.Ptr("next", 0); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	if err != nil {
		return err
	}

	// Build 1 -> 2 -> 3 in the client's heap.
	head := srpc.NullPtr(cellType)
	for i := 3; i >= 1; i-- {
		v, err := client.NewObject(cellType)
		if err != nil {
			return err
		}
		ref, err := client.Deref(v)
		if err != nil {
			return err
		}
		if err := ref.SetInt("val", 0, int64(i)); err != nil {
			return err
		}
		if err := ref.SetPtr("next", 0, head); err != nil {
			return err
		}
		head = v
	}

	fn, err := client.FuncValue("scale")
	if err != nil {
		return err
	}
	if err := client.BeginSession(); err != nil {
		return err
	}
	if _, err := client.Call(2, "mapList", []srpc.Value{fn, head}); err != nil {
		return err
	}
	if err := client.EndSession(); err != nil {
		return err
	}

	// Read the mapped list back locally.
	var vals []int64
	for v := head; !v.IsNullPtr(); {
		ref, err := client.Deref(v)
		if err != nil {
			return err
		}
		x, err := ref.Int("val", 0)
		if err != nil {
			return err
		}
		vals = append(vals, x)
		if v, err = ref.Ptr("next", 0); err != nil {
			return err
		}
	}
	fmt.Printf("mapped list: %v (want [10 20 30])\n", vals)
	fmt.Printf("client-side function invoked %d times via remote function pointer\n", calls)
	return nil
}

// Editgraph demonstrates the full mutation story of the paper: a remote
// procedure that *edits* a data structure it received by pointer —
// updating fields, allocating new nodes in the caller's space with
// extended_malloc, and releasing others with extended_free — all of it
// reflected in the caller's original structure when the session ends
// (§3.4 coherency protocol, §3.5 remote memory management).
//
// The graph is a doubly linked ring. The editor space reverses the ring's
// payload order, splices in freshly allocated nodes, and deletes the
// nodes it was asked to drop.
//
// Run with: go run ./examples/editgraph
package main

import (
	"fmt"
	"log"
	"strings"

	srpc "smartrpc"
)

const ringNode srpc.TypeID = 7

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func schema() (*srpc.Registry, error) {
	reg := srpc.NewRegistry()
	reg.MustRegister(&srpc.TypeDesc{
		ID:   ringNode,
		Name: "RingNode",
		Fields: []srpc.Field{
			{Name: "next", Kind: srpc.KindPtr, Elem: ringNode},
			{Name: "prev", Kind: srpc.KindPtr, Elem: ringNode},
			{Name: "label", Kind: srpc.KindInt64},
		},
	})
	return reg, reg.Validate()
}

// buildRing creates a ring 1..n in owner's heap and returns its head.
func buildRing(owner *srpc.Runtime, n int) (srpc.Value, error) {
	nodes := make([]srpc.Value, n)
	for i := range nodes {
		v, err := owner.NewObject(ringNode)
		if err != nil {
			return srpc.Value{}, err
		}
		ref, err := owner.Deref(v)
		if err != nil {
			return srpc.Value{}, err
		}
		if err := ref.SetInt("label", 0, int64(i+1)); err != nil {
			return srpc.Value{}, err
		}
		nodes[i] = v
	}
	for i, v := range nodes {
		ref, err := owner.Deref(v)
		if err != nil {
			return srpc.Value{}, err
		}
		if err := ref.SetPtr("next", 0, nodes[(i+1)%n]); err != nil {
			return srpc.Value{}, err
		}
		if err := ref.SetPtr("prev", 0, nodes[(i-1+n)%n]); err != nil {
			return srpc.Value{}, err
		}
	}
	return nodes[0], nil
}

// readRing renders the ring's labels from head, following next pointers.
func readRing(rt *srpc.Runtime, head srpc.Value) (string, error) {
	var labels []string
	v := head
	for {
		ref, err := rt.Deref(v)
		if err != nil {
			return "", err
		}
		l, err := ref.Int("label", 0)
		if err != nil {
			return "", err
		}
		labels = append(labels, fmt.Sprint(l))
		if v, err = ref.Ptr("next", 0); err != nil {
			return "", err
		}
		if v.Addr == head.Addr && v.LP == head.LP {
			break
		}
		if len(labels) > 1000 {
			return "", fmt.Errorf("ring not closed")
		}
	}
	return strings.Join(labels, " -> "), nil
}

func registerEditor(editor *srpc.Runtime) error {
	// negateLabels walks the ring and negates every label in place.
	err := editor.Register("negateLabels", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		rt := ctx.Runtime()
		v := args[0]
		start := args[0]
		for {
			ref, err := rt.Deref(v)
			if err != nil {
				return nil, err
			}
			l, err := ref.Int("label", 0)
			if err != nil {
				return nil, err
			}
			if err := ref.SetInt("label", 0, -l); err != nil {
				return nil, err
			}
			if v, err = ref.Ptr("next", 0); err != nil {
				return nil, err
			}
			if v.LP == start.LP {
				return nil, nil
			}
		}
	})
	if err != nil {
		return err
	}

	// spliceAfter allocates a new node IN THE CALLER'S SPACE and links it
	// after the head.
	err = editor.Register("spliceAfter", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		rt := ctx.Runtime()
		head, label := args[0], args[1].Int64()
		fresh, err := rt.ExtendedMalloc(ctx.Caller(), ringNode)
		if err != nil {
			return nil, err
		}
		headRef, err := rt.Deref(head)
		if err != nil {
			return nil, err
		}
		second, err := headRef.Ptr("next", 0)
		if err != nil {
			return nil, err
		}
		freshRef, err := rt.Deref(fresh)
		if err != nil {
			return nil, err
		}
		if err := freshRef.SetInt("label", 0, label); err != nil {
			return nil, err
		}
		if err := freshRef.SetPtr("next", 0, second); err != nil {
			return nil, err
		}
		if err := freshRef.SetPtr("prev", 0, head); err != nil {
			return nil, err
		}
		if err := headRef.SetPtr("next", 0, fresh); err != nil {
			return nil, err
		}
		secondRef, err := rt.Deref(second)
		if err != nil {
			return nil, err
		}
		if err := secondRef.SetPtr("prev", 0, fresh); err != nil {
			return nil, err
		}
		return nil, nil
	})
	if err != nil {
		return err
	}

	// dropAfter unlinks the node after head and releases its storage in
	// the owner's space (extended_free).
	return editor.Register("dropAfter", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		rt := ctx.Runtime()
		headRef, err := rt.Deref(args[0])
		if err != nil {
			return nil, err
		}
		victim, err := headRef.Ptr("next", 0)
		if err != nil {
			return nil, err
		}
		victimRef, err := rt.Deref(victim)
		if err != nil {
			return nil, err
		}
		after, err := victimRef.Ptr("next", 0)
		if err != nil {
			return nil, err
		}
		if err := headRef.SetPtr("next", 0, after); err != nil {
			return nil, err
		}
		afterRef, err := rt.Deref(after)
		if err != nil {
			return nil, err
		}
		if err := afterRef.SetPtr("prev", 0, args[0]); err != nil {
			return nil, err
		}
		return nil, rt.ExtendedFree(victim)
	})
}

func run() error {
	reg, err := schema()
	if err != nil {
		return err
	}
	net, err := srpc.NewLocalNetwork(srpc.Ethernet10SPARC())
	if err != nil {
		return err
	}
	defer net.Close()
	ownerNode, err := net.Attach(1)
	if err != nil {
		return err
	}
	editorNode, err := net.Attach(2)
	if err != nil {
		return err
	}
	owner, err := srpc.New(srpc.Options{ID: 1, Node: ownerNode, Registry: reg})
	if err != nil {
		return err
	}
	defer owner.Close()
	editor, err := srpc.New(srpc.Options{ID: 2, Node: editorNode, Registry: reg})
	if err != nil {
		return err
	}
	defer editor.Close()
	if err := registerEditor(editor); err != nil {
		return err
	}

	head, err := buildRing(owner, 5)
	if err != nil {
		return err
	}
	before, err := readRing(owner, head)
	if err != nil {
		return err
	}
	fmt.Println("before:", before)

	if err := owner.BeginSession(); err != nil {
		return err
	}
	if _, err := owner.Call(2, "negateLabels", []srpc.Value{head}); err != nil {
		return fmt.Errorf("negateLabels: %w", err)
	}
	if _, err := owner.Call(2, "dropAfter", []srpc.Value{head}); err != nil {
		return fmt.Errorf("dropAfter: %w", err)
	}
	if _, err := owner.Call(2, "spliceAfter", []srpc.Value{head, srpc.Int64Value(99)}); err != nil {
		return fmt.Errorf("spliceAfter: %w", err)
	}
	if err := owner.EndSession(); err != nil {
		return err
	}

	after, err := readRing(owner, head)
	if err != nil {
		return err
	}
	fmt.Println("after: ", after)
	fmt.Println()
	fmt.Println("negateLabels flipped every label remotely; dropAfter unlinked the")
	fmt.Println("second node and released its storage in the owner's heap via")
	fmt.Println("extended_free; spliceAfter then allocated node 99 in the OWNER's")
	fmt.Println("heap from the editor via extended_malloc. All edits were written")
	fmt.Println("back to the owner at session end.")
	return nil
}

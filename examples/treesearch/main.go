// Treesearch reproduces the paper's motivating workload (§4.1)
// interactively: a complete binary tree lives in the caller's address
// space, and a remote procedure searches part of it, under each of the
// three transfer methods the paper compares.
//
//	go run ./examples/treesearch -nodes 32767 -ratio 0.4
//
// The output shows why the proposed method wins at moderate access
// ratios: the eager method always ships the whole tree, the lazy method
// pays one callback per visited node, and the smart method faults once
// per page and prefetches a bounded closure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	srpc "smartrpc"
	"smartrpc/internal/bench"
)

func main() {
	nodes := flag.Int("nodes", 32767, "tree size (2^k - 1)")
	ratio := flag.Float64("ratio", 0.4, "fraction of nodes the callee visits")
	closure := flag.Int("closure", 8192, "closure size in bytes (smart method)")
	flag.Parse()
	if err := run(*nodes, *ratio, *closure); err != nil {
		log.Fatal(err)
	}
}

func run(nodes int, ratio float64, closure int) error {
	fmt.Printf("searching %.0f%% of a %d-node tree held by the caller\n\n", ratio*100, nodes)
	fmt.Printf("%-12s %-12s %-11s %-10s %-12s\n", "method", "model-time", "callbacks", "messages", "bytes")
	for _, pol := range []srpc.Policy{srpc.PolicyEager, srpc.PolicyLazy, srpc.PolicySmart} {
		res, err := bench.RunTree(bench.TreeConfig{
			Policy:      pol,
			Nodes:       nodes,
			ClosureSize: closure,
			AccessRatio: ratio,
			Model:       srpc.Ethernet10SPARC(),
		})
		if err != nil {
			return fmt.Errorf("%v: %w", pol, err)
		}
		name := map[srpc.Policy]string{
			srpc.PolicyEager: "fully-eager",
			srpc.PolicyLazy:  "fully-lazy",
			srpc.PolicySmart: "proposed",
		}[pol]
		fmt.Printf("%-12s %-12.3f %-11d %-10d %-12d\n",
			name, res.Time.Seconds(), res.Callbacks, res.Messages, res.Bytes)
		if res.Visited != int64(ratio*float64(nodes)) {
			fmt.Fprintf(os.Stderr, "warning: visited %d nodes\n", res.Visited)
		}
	}
	fmt.Println("\n(model-time is deterministic virtual time on the paper's 10 Mbps testbed)")
	return nil
}
